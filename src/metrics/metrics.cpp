#include "metrics/metrics.hpp"

#include "util/assert.hpp"

namespace dtn::metrics {

RunResult summarize(const net::Network& network,
                    const std::string& router_name, const CostModel& cost) {
  DTN_ASSERT(cost.entries_per_op > 0.0);
  const net::RunCounters& c = network.counters();
  RunResult r;
  r.router = router_name;
  r.generated = c.generated;
  r.delivered = c.delivered;
  r.dropped_ttl = c.dropped_ttl;
  r.success_rate =
      c.generated == 0
          ? 0.0
          : static_cast<double>(c.delivered) / static_cast<double>(c.generated);
  r.avg_delay =
      c.delivered == 0 ? 0.0 : c.total_delay / static_cast<double>(c.delivered);
  r.failure_delay = network.trace_end() - network.workload_start();
  const auto failures = c.generated - c.delivered;
  r.overall_delay =
      c.generated == 0
          ? 0.0
          : (c.total_delay + static_cast<double>(failures) * r.failure_delay) /
                static_cast<double>(c.generated);
  r.forwarding_cost = static_cast<double>(c.packet_forwards);
  r.control_cost = c.control_entries / cost.entries_per_op;
  r.total_cost = r.forwarding_cost + r.control_cost;
  r.delivery_delays = c.delivery_delays;
  if (!c.delivery_hops.empty()) {
    double total_hops = 0.0;
    for (const auto h : c.delivery_hops) total_hops += h;
    r.mean_hops = total_hops / static_cast<double>(c.delivery_hops.size());
  }
  r.node_crashes = c.node_crashes;
  r.station_outages = c.station_outages;
  r.packets_lost_fault = c.packets_lost_fault;
  r.kb_lost_fault = static_cast<double>(c.kb_lost_fault);
  r.transfers_interrupted = c.transfers_interrupted;
  r.transfers_resumed = c.transfers_resumed;
  if (!c.outage_recovery_delays.empty()) {
    double total = 0.0;
    for (const double d : c.outage_recovery_delays) total += d;
    r.mean_outage_recovery =
        total / static_cast<double>(c.outage_recovery_delays.size());
  }
  return r;
}

RunResult run_experiment(const trace::Trace& trace, net::Router& router,
                         const net::WorkloadConfig& workload,
                         const CostModel& cost, std::size_t num_shards) {
  net::Network network(trace, router, workload);
  // The sharded engine is bit-identical to run(), so falling back when
  // its preconditions fail (serial-only router features, fault plans,
  // node-addressed packets) never changes results, only wall-clock.
  bool landmark_addressed = true;
  for (const auto& mp : workload.manual_packets) {
    if (mp.dst_node != trace::kNoNode) landmark_addressed = false;
  }
  if (num_shards > 1 && router.shard_safe() && !workload.faults.has_value() &&
      workload.audit_period_events == 0 && landmark_addressed) {
    network.run_sharded(num_shards);
  } else {
    network.run();
  }
  return summarize(network, router.name(), cost);
}

}  // namespace dtn::metrics
