#include "metrics/observer.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dtn::metrics {

ObservedRouter::ObservedRouter(std::unique_ptr<net::Router> inner)
    : inner_(std::move(inner)) {
  DTN_ASSERT(inner_ != nullptr);
}

void ObservedRouter::on_init(net::Network& net) {
  samples_.clear();
  inner_->on_init(net);
}

void ObservedRouter::on_arrival(net::Network& net, net::NodeId node,
                                net::LandmarkId l) {
  inner_->on_arrival(net, node, l);
}

void ObservedRouter::on_departure(net::Network& net, net::NodeId node,
                                  net::LandmarkId l) {
  inner_->on_departure(net, node, l);
}

void ObservedRouter::on_contact(net::Network& net, net::NodeId arriving,
                                net::NodeId present, net::LandmarkId l) {
  inner_->on_contact(net, arriving, present, l);
}

void ObservedRouter::on_packet_generated(net::Network& net,
                                         net::PacketId pid) {
  inner_->on_packet_generated(net, pid);
}

void ObservedRouter::on_time_unit(net::Network& net, std::size_t unit_index) {
  inner_->on_time_unit(net, unit_index);
  TimeSample s;
  s.time = net.now();
  s.unit = unit_index;
  s.generated = net.counters().generated;
  s.delivered = net.counters().delivered;
  s.dropped_ttl = net.counters().dropped_ttl;
  for (net::LandmarkId l = 0; l < net.num_landmarks(); ++l) {
    const std::size_t backlog = net.station_packets(l).size();
    s.station_backlog_total += backlog;
    s.station_backlog_max = std::max(s.station_backlog_max, backlog);
    s.origin_backlog_total += net.origin_packets(l).size();
  }
  for (net::NodeId n = 0; n < net.num_nodes(); ++n) {
    s.node_buffered_total += net.node_packets(n).size();
  }
  samples_.push_back(s);
}

}  // namespace dtn::metrics
