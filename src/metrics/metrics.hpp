// Derived metrics (§V-A.1) and the single-run harness.
//
//  * success rate  — delivered / generated;
//  * average delay — mean delay of delivered packets;
//  * overall delay — mean over all packets, an undelivered packet
//    counting as the experiment duration (used by the Table VII bench);
//  * forwarding cost — packet forwarding operations;
//  * total cost — forwarding cost + control-information cost, where
//    transferring a table of m entries counts as m / alpha operations
//    (the paper's alpha is unreadable in the source text; we default to
//    50, roughly one packet's worth of entries, see DESIGN.md).
#pragma once

#include <string>
#include <vector>

#include "net/network.hpp"
#include "trace/trace.hpp"

namespace dtn::metrics {

struct CostModel {
  /// Table entries per forwarding-operation equivalent.
  double entries_per_op = 50.0;
};

struct RunResult {
  std::string router;
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_ttl = 0;
  double success_rate = 0.0;
  double avg_delay = 0.0;      ///< seconds, delivered packets only
  double overall_delay = 0.0;  ///< seconds, failures count as `failure_delay`
  double forwarding_cost = 0.0;
  double control_cost = 0.0;
  double total_cost = 0.0;
  /// The delay each failure contributes to `overall_delay` (experiment
  /// duration, per the paper's Table VII methodology).
  double failure_delay = 0.0;
  std::vector<double> delivery_delays;  ///< seconds, for quantile figures
  /// Mean forwarding operations per delivered packet (path length).
  double mean_hops = 0.0;

  // -- resilience (all zero unless a fault plan was attached) -----------
  std::uint64_t node_crashes = 0;
  std::uint64_t station_outages = 0;
  std::uint64_t packets_lost_fault = 0;
  double kb_lost_fault = 0.0;
  std::uint64_t transfers_interrupted = 0;
  std::uint64_t transfers_resumed = 0;
  /// Mean seconds from a station's recovery to its first successful
  /// transfer (0 when no recovery was exercised).
  double mean_outage_recovery = 0.0;
};

/// Derive a RunResult from a finished network.
[[nodiscard]] RunResult summarize(const net::Network& network,
                                  const std::string& router_name,
                                  const CostModel& cost = {});

/// Convenience: build a network over `trace`, run `router`, summarize.
/// `num_shards` > 1 uses the sharded replay engine when the router and
/// workload allow it (docs/parallel-engine.md) — results are
/// bit-identical to the serial engine either way.
[[nodiscard]] RunResult run_experiment(const trace::Trace& trace,
                                       net::Router& router,
                                       const net::WorkloadConfig& workload,
                                       const CostModel& cost = {},
                                       std::size_t num_shards = 1);

}  // namespace dtn::metrics
