// Time-series instrumentation: wrap any router and sample system state
// at every measurement time unit — delivered/dropped counts, station
// backlogs, node-buffer occupancy.  Powers the congestion-dynamics
// bench and any "metric over time" figure.
#pragma once

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "net/router.hpp"

namespace dtn::metrics {

struct TimeSample {
  double time = 0.0;
  std::size_t unit = 0;
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_ttl = 0;
  /// Packets sitting in landmark stations (summed / the largest one).
  std::size_t station_backlog_total = 0;
  std::size_t station_backlog_max = 0;
  /// Packets waiting at origin queues (node-only routers).
  std::size_t origin_backlog_total = 0;
  /// Packets on mobile nodes.
  std::size_t node_buffered_total = 0;
};

/// Decorator router: forwards every event to the wrapped router and
/// records a TimeSample per time unit.
class ObservedRouter final : public net::Router {
 public:
  explicit ObservedRouter(std::unique_ptr<net::Router> inner);

  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] bool uses_stations() const override {
    return inner_->uses_stations();
  }

  void on_init(net::Network& net) override;
  void on_arrival(net::Network& net, net::NodeId node,
                  net::LandmarkId l) override;
  void on_departure(net::Network& net, net::NodeId node,
                    net::LandmarkId l) override;
  void on_contact(net::Network& net, net::NodeId arriving,
                  net::NodeId present, net::LandmarkId l) override;
  void on_packet_generated(net::Network& net, net::PacketId pid) override;
  void on_time_unit(net::Network& net, std::size_t unit_index) override;

  [[nodiscard]] const std::vector<TimeSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] net::Router& inner() { return *inner_; }

 private:
  std::unique_ptr<net::Router> inner_;
  std::vector<TimeSample> samples_;
};

}  // namespace dtn::metrics
