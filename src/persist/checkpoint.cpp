#include "persist/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/assert.hpp"

namespace dtn::persist {

namespace fs = std::filesystem;

namespace {

constexpr const char* kPrefix = "ckpt-";
constexpr const char* kSuffix = ".dtnckpt";

std::string snapshot_name(std::uint64_t executed_events) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%020llu%s", kPrefix,
                static_cast<unsigned long long>(executed_events), kSuffix);
  return buf;
}

}  // namespace

CheckpointManager::CheckpointManager(CheckpointConfig cfg)
    : cfg_(std::move(cfg)) {
  DTN_ASSERT(!cfg_.dir.empty());
  fs::create_directories(cfg_.dir);
}

std::vector<std::string> CheckpointManager::list() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cfg_.dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(kPrefix, 0) != 0) continue;
    if (name.size() < std::string(kSuffix).size() ||
        name.compare(name.size() - std::string(kSuffix).size(),
                     std::string::npos, kSuffix) != 0) {
      continue;
    }
    out.push_back(entry.path().string());
  }
  // Directory iteration order is unspecified; the zero-padded event
  // count in the name makes a lexicographic sort chronological.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint8_t> CheckpointManager::read_latest(
    std::string* path) const {
  const std::vector<std::string> snaps = list();
  if (snaps.empty()) {
    throw FormatError("no checkpoint found in " + cfg_.dir);
  }
  if (path != nullptr) *path = snaps.back();
  return read_file(snaps.back());
}

std::string CheckpointManager::write(std::uint64_t executed_events,
                                     const std::vector<std::uint8_t>& bytes) {
  const fs::path final_path = fs::path(cfg_.dir) / snapshot_name(executed_events);
  const fs::path tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw FormatError("cannot open checkpoint temp file " +
                        tmp_path.string());
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      throw FormatError("short write to checkpoint temp file " +
                        tmp_path.string());
    }
  }
  // rename() within one directory is atomic: readers either see the old
  // snapshot set or the complete new file, never a partial one.
  fs::rename(tmp_path, final_path);

  if (cfg_.keep > 0) {
    std::vector<std::string> snaps = list();
    while (snaps.size() > cfg_.keep) {
      std::error_code ec;
      fs::remove(snaps.front(), ec);
      snaps.erase(snaps.begin());
    }
  }
  return final_path.string();
}

std::vector<std::uint8_t> CheckpointManager::read_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw FormatError("cannot open checkpoint file " + path);
  }
  std::vector<std::uint8_t> bytes;
  in.seekg(0, std::ios::end);
  const std::streampos end = in.tellg();
  if (end < 0) {
    throw FormatError("cannot stat checkpoint file " + path);
  }
  bytes.resize(static_cast<std::size_t>(end));
  in.seekg(0, std::ios::beg);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (in.gcount() != static_cast<std::streamsize>(bytes.size())) {
    throw FormatError("short read from checkpoint file " + path);
  }
  return bytes;
}

}  // namespace dtn::persist
