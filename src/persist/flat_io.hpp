#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "persist/serializer.hpp"
#include "util/flat_matrix.hpp"

// Writer/Reader adapters for the flat containers the hot paths are
// built on.  Kept header-only and element-wise: FlatMatrix exposes no
// mutable raw() on purpose, and going through at() keeps the encoding
// independent of the in-memory layout.

namespace dtn::persist {

template <typename T>
void write_scalar(Writer& w, const T& v) {
  if constexpr (std::is_same_v<T, double>) {
    w.f64(v);
  } else if constexpr (std::is_same_v<T, bool>) {
    w.boolean(v);
  } else if constexpr (sizeof(T) <= 1) {
    w.u8(static_cast<std::uint8_t>(v));
  } else if constexpr (sizeof(T) <= 4) {
    w.u32(static_cast<std::uint32_t>(v));
  } else {
    w.u64(static_cast<std::uint64_t>(v));
  }
}

template <typename T>
void read_scalar(Reader& r, T& v) {
  if constexpr (std::is_same_v<T, double>) {
    v = r.f64();
  } else if constexpr (std::is_same_v<T, bool>) {
    v = r.boolean();
  } else if constexpr (sizeof(T) <= 1) {
    v = static_cast<T>(r.u8());
  } else if constexpr (sizeof(T) <= 4) {
    v = static_cast<T>(r.u32());
  } else {
    v = static_cast<T>(r.u64());
  }
}

template <typename T>
void write_matrix(Writer& w, const FlatMatrix<T>& m) {
  w.u64(m.rows());
  w.u64(m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      write_scalar(w, m.at(r, c));
    }
  }
}

template <typename T>
void read_matrix(Reader& r, FlatMatrix<T>& m) {
  const auto rows = static_cast<std::size_t>(r.u64());
  const auto cols = static_cast<std::size_t>(r.u64());
  m = FlatMatrix<T>(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      read_scalar(r, m.at(i, j));
    }
  }
}

template <typename T>
void write_vec(Writer& w, const std::vector<T>& v) {
  w.u64(v.size());
  for (const T& x : v) write_scalar(w, x);
}

template <typename T>
void read_vec(Reader& r, std::vector<T>& v) {
  v.resize(static_cast<std::size_t>(r.u64()));
  for (T& x : v) read_scalar(r, x);
}

}  // namespace dtn::persist
