#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "persist/serializer.hpp"

// Filesystem side of the checkpoint subsystem (docs/checkpointing.md):
// atomic snapshot files (write-to-temp + rename), sorted discovery of
// existing snapshots, and a bounded retention window.  Snapshot files
// are named ckpt-<executed event count, zero padded>.dtnckpt so that
// lexicographic order equals event order and "latest" is well defined
// without consulting file timestamps (which would be nondeterministic).

namespace dtn::persist {

struct CheckpointConfig {
  std::string dir;                      // snapshot directory (created on demand)
  std::uint64_t every_events = 0;       // snapshot period in dispatched events (0 = off)
  double every_time = 0.0;              // snapshot period in simulation time units (0 = off)
  std::size_t keep = 4;                 // retained snapshots; older ones are pruned
  std::uint64_t stop_after_events = 0;  // deterministic kill: snapshot then stop (0 = run to completion)
};

class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointConfig cfg);

  const CheckpointConfig& config() const { return cfg_; }

  // Sorted full paths of every snapshot in the directory (oldest first).
  std::vector<std::string> list() const;
  bool has_checkpoint() const { return !list().empty(); }

  // Reads the newest snapshot; throws FormatError if there is none.
  // The optional out-param reports which file was read.
  std::vector<std::uint8_t> read_latest(std::string* path = nullptr) const;

  // Atomically publishes a snapshot for the given executed-event count
  // and prunes snapshots beyond the retention window.  Returns the
  // final path.
  std::string write(std::uint64_t executed_events,
                    const std::vector<std::uint8_t>& bytes);

  static std::vector<std::uint8_t> read_file(const std::string& path);

 private:
  CheckpointConfig cfg_;
};

}  // namespace dtn::persist
