#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

// Versioned, endianness-explicit binary serialization for checkpoints
// (docs/checkpointing.md).  A checkpoint is a flat byte stream:
//
//   magic "DTNCKPT\n" | u32 schema version | u32 flags
//   section*          | u32 0 (end marker)
//
// where each section is
//
//   u32 name_len | name bytes | u64 payload_len | payload | u32 crc32(payload)
//
// All integers are little-endian regardless of host order; doubles are
// bit_cast to u64 first, so a checkpoint round-trips bit-exactly.  The
// Writer/Reader pair is purely in-memory — CheckpointManager owns all
// filesystem concerns (atomic write, discovery, retention).
//
// Readers consume sections in the exact order writers emitted them and
// must drain each payload completely; any mismatch (magic, schema
// version, section name, CRC, truncation, trailing bytes) throws
// FormatError rather than yielding partial state.

namespace dtn::persist {

inline constexpr std::uint32_t kSchemaVersion = 1;
inline constexpr std::size_t kMagicSize = 8;

const std::uint8_t* magic();  // kMagicSize bytes

// Any structural problem with a checkpoint byte stream.
class FormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

std::uint32_t crc32(std::span<const std::uint8_t> data);

class Writer {
 public:
  Writer();

  void begin_section(std::string_view name);
  void end_section();
  void finish();  // appends the end marker; no sections may follow

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s);

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  // (name, crc32) of every closed section, in write order.  The
  // InvariantAuditor compares these against a fresh serialization of
  // live state to prove a snapshot still matches the simulation.
  const std::vector<std::pair<std::string, std::uint32_t>>& sections() const {
    return sections_;
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::vector<std::pair<std::string, std::uint32_t>> sections_;
  std::string section_name_;
  std::size_t size_pos_ = 0;     // offset of the current payload_len field
  std::size_t payload_pos_ = 0;  // offset of the current payload start
  bool in_section_ = false;
  bool finished_ = false;
};

class Reader {
 public:
  explicit Reader(std::vector<std::uint8_t> data);

  // Positions the reader inside the next section, which must be named
  // `name`, after verifying its CRC.  Throws FormatError otherwise.
  void expect_section(std::string_view name);
  void end_section();  // payload must be fully consumed
  void finish();       // end marker must follow, then end of stream

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean();
  std::string str();

  std::uint32_t schema_version() const { return version_; }

 private:
  void need(std::size_t n) const;  // bounds check against section/stream end
  std::uint32_t raw_u32();
  std::uint64_t raw_u64();

  std::vector<std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::size_t section_end_ = 0;
  std::string section_name_;
  std::uint32_t version_ = 0;
  bool in_section_ = false;
};

}  // namespace dtn::persist
