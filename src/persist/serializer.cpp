#include "persist/serializer.hpp"

#include <array>
#include <cstring>

#include "util/assert.hpp"

namespace dtn::persist {

namespace {

constexpr std::array<std::uint8_t, kMagicSize> kMagic = {
    'D', 'T', 'N', 'C', 'K', 'P', 'T', '\n'};

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void store_u64_at(std::vector<std::uint8_t>& buf, std::size_t pos,
                  std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf[pos + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

}  // namespace

const std::uint8_t* magic() { return kMagic.data(); }

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (const std::uint8_t b : data) {
    crc = table[(crc ^ b) & 0xFFU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

Writer::Writer() {
  buf_.insert(buf_.end(), kMagic.begin(), kMagic.end());
  u32(kSchemaVersion);
  u32(0);  // flags, reserved
}

void Writer::begin_section(std::string_view name) {
  DTN_ASSERT(!in_section_ && !finished_);
  DTN_ASSERT(!name.empty());
  u32(static_cast<std::uint32_t>(name.size()));
  buf_.insert(buf_.end(), name.begin(), name.end());
  size_pos_ = buf_.size();
  u64(0);  // payload_len, patched in end_section
  payload_pos_ = buf_.size();
  section_name_.assign(name);
  in_section_ = true;
}

void Writer::end_section() {
  DTN_ASSERT(in_section_);
  const std::size_t payload_len = buf_.size() - payload_pos_;
  store_u64_at(buf_, size_pos_, payload_len);
  const std::uint32_t crc = crc32(
      std::span<const std::uint8_t>(buf_.data() + payload_pos_, payload_len));
  in_section_ = false;
  u32(crc);
  sections_.emplace_back(section_name_, crc);
}

void Writer::finish() {
  DTN_ASSERT(!in_section_ && !finished_);
  u32(0);  // end marker: a zero-length section name terminates the stream
  finished_ = true;
}

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

Reader::Reader(std::vector<std::uint8_t> data) : data_(std::move(data)) {
  if (data_.size() < kMagicSize + 8) {
    throw FormatError("checkpoint truncated: shorter than the header");
  }
  if (std::memcmp(data_.data(), kMagic.data(), kMagicSize) != 0) {
    throw FormatError("not a checkpoint: bad magic");
  }
  pos_ = kMagicSize;
  version_ = raw_u32();
  if (version_ != kSchemaVersion) {
    throw FormatError("unsupported checkpoint schema version " +
                      std::to_string(version_) + " (this build reads version " +
                      std::to_string(kSchemaVersion) + ")");
  }
  raw_u32();  // flags, reserved
}

void Reader::need(std::size_t n) const {
  const std::size_t limit = in_section_ ? section_end_ : data_.size();
  if (pos_ + n > limit) {
    throw FormatError(in_section_
                          ? "checkpoint section '" + section_name_ +
                                "' truncated: read past payload end"
                          : "checkpoint truncated: read past end of stream");
  }
}

std::uint32_t Reader::raw_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::raw_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

void Reader::expect_section(std::string_view name) {
  DTN_ASSERT(!in_section_);
  const std::uint32_t name_len = raw_u32();
  if (name_len == 0) {
    throw FormatError("checkpoint ended early: wanted section '" +
                      std::string(name) + "'");
  }
  need(name_len);
  std::string found(reinterpret_cast<const char*>(data_.data()) + pos_,
                    name_len);
  pos_ += name_len;
  if (found != name) {
    throw FormatError("checkpoint section order mismatch: wanted '" +
                      std::string(name) + "', found '" + found + "'");
  }
  const std::uint64_t payload_len = raw_u64();
  if (payload_len > data_.size() - pos_ || data_.size() - pos_ - payload_len < 4) {
    throw FormatError("checkpoint section '" + found +
                      "' truncated: payload length exceeds stream");
  }
  const auto payload = std::span<const std::uint8_t>(
      data_.data() + pos_, static_cast<std::size_t>(payload_len));
  const std::size_t crc_pos = pos_ + static_cast<std::size_t>(payload_len);
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(data_[crc_pos + static_cast<std::size_t>(i)])
              << (8 * i);
  }
  if (crc32(payload) != stored) {
    throw FormatError("checkpoint section '" + found +
                      "' corrupt: CRC mismatch");
  }
  section_end_ = crc_pos;
  section_name_ = std::move(found);
  in_section_ = true;
}

void Reader::end_section() {
  DTN_ASSERT(in_section_);
  if (pos_ != section_end_) {
    throw FormatError("checkpoint section '" + section_name_ +
                      "' has unconsumed payload bytes");
  }
  pos_ += 4;  // skip the (already verified) CRC
  in_section_ = false;
}

void Reader::finish() {
  DTN_ASSERT(!in_section_);
  const std::uint32_t name_len = raw_u32();
  if (name_len != 0) {
    throw FormatError("checkpoint has trailing sections past the end marker");
  }
  if (pos_ != data_.size()) {
    throw FormatError("checkpoint has trailing garbage past the end marker");
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t Reader::u32() { return raw_u32(); }

std::uint64_t Reader::u64() { return raw_u64(); }

bool Reader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) {
    throw FormatError("checkpoint section '" + section_name_ +
                      "' corrupt: boolean out of range");
  }
  return v != 0;
}

std::string Reader::str() {
  const std::uint32_t len = raw_u32();
  need(len);
  std::string s(reinterpret_cast<const char*>(data_.data()) + pos_, len);
  pos_ += len;
  return s;
}

}  // namespace dtn::persist
