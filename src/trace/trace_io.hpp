// Trace serialization.
//
// Format: CSV with a one-line header `node,landmark,start,end`, times in
// seconds.  This is the schema the paper's preprocessing produces from
// the raw DART/DNET logs, so real preprocessed traces drop in directly.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace dtn::trace {

/// Write `trace` as CSV to `path`.  Throws std::runtime_error on I/O error.
void write_trace_csv(const Trace& trace, const std::string& path);
void write_trace_csv(const Trace& trace, std::ostream& out);

/// Read a CSV trace.  Node/landmark universe sizes are taken as
/// (max id + 1) unless explicit sizes are given.  Throws
/// std::runtime_error on malformed input; the message names the file
/// (or `source` for the stream overload) and the offending line, so a
/// bad row in a multi-trace batch is attributable without re-running.
[[nodiscard]] Trace read_trace_csv(const std::string& path);
[[nodiscard]] Trace read_trace_csv(std::istream& in,
                                   const std::string& source = "<stream>");

}  // namespace dtn::trace
