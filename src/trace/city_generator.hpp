// Synthetic city-scale trace generator.
//
// The campus generator reproduces the paper's DART statistics at WLAN
// scale (hundreds of nodes).  This tier targets the *city* deployments
// DTN-FLOW is designed for — NUS-bus-like populations with 100k+
// devices, thousands of landmarks and a mixed pedestrian/bus
// population:
//
//  * the city is split into districts, each owning a contiguous block
//    of neighbourhood landmarks; pedestrians mostly move inside their
//    home district and occasionally visit shared city hubs (malls,
//    interchanges) drawn from a Zipf popularity law;
//  * buses run fixed multi-district routes all day, providing the
//    high-bandwidth inter-landmark backbone (the paper's vehicles) and
//    — for the sharded replay engine — the bulk of the cross-shard
//    node migrations.
//
// District locality is what makes these traces shard well: with one
// shard per district-group most events stay shard-local and only hub
// trips and bus hops cross the partition (docs/parallel-engine.md).
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace dtn::trace {

struct CityTraceConfig {
  /// Pedestrian population (node ids 0 .. num_pedestrians-1).
  std::size_t num_pedestrians = 2000;
  /// Bus population (node ids num_pedestrians .. num_pedestrians+num_buses-1).
  std::size_t num_buses = 40;
  std::size_t num_landmarks = 400;
  std::size_t num_districts = 16;
  double days = 2.0;

  /// Fraction of landmarks that are shared city hubs (≥ 1 hub); the
  /// rest are dealt contiguously to districts.
  double hub_fraction = 0.04;
  /// Zipf exponent over hub popularity.
  double zipf_exponent = 0.8;
  /// Probability a pedestrian move leaves the home district for a hub.
  double trip_probability = 0.15;

  double mean_stay_minutes = 25.0;
  double mean_travel_minutes = 6.0;
  double day_start_hour = 6.0;
  double day_end_hour = 22.0;

  /// Stops per bus route (alternating hubs and district landmarks).
  std::size_t bus_route_stops = 12;
  double bus_dwell_minutes = 2.0;
  double bus_hop_minutes = 5.0;

  std::uint64_t seed = 1;
};

/// Full city-scale configuration: 100k+ nodes, thousands of landmarks.
/// Generation is fast, but replaying a full run over this trace is a
/// benchmark-tier workload — tests should scale `CityTraceConfig` down.
[[nodiscard]] CityTraceConfig city_scale_config(std::uint64_t seed = 1);

[[nodiscard]] Trace generate_city_trace(const CityTraceConfig& config);

}  // namespace dtn::trace
