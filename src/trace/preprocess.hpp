// Trace preprocessing mirroring §III-B.1 of the paper:
//  * merge neighbouring records of the same node at the same landmark,
//  * remove short connections (DART: < 200 s),
//  * remove nodes with few records (DART: < 500),
//  * cluster access points within a distance threshold into one
//    landmark (DNET: 1.5 km) and drop rarely-seen APs (< 50 records).
#pragma once

#include <vector>

#include "trace/trace.hpp"

namespace dtn::trace {

/// Merge consecutive visits of a node at the same landmark when the gap
/// between them is at most `max_gap_seconds` (the paper's "merged
/// neighbouring records referring to the same node and the same
/// landmark").
[[nodiscard]] Trace merge_neighboring_visits(const Trace& trace,
                                             double max_gap_seconds);

/// Drop visits shorter than `min_duration_seconds`.
[[nodiscard]] Trace drop_short_visits(const Trace& trace,
                                      double min_duration_seconds);

/// Remove nodes with fewer than `min_records` visits; node ids are
/// compacted.  Returns the new trace; `kept` (if non-null) receives the
/// surviving original node ids in order.
[[nodiscard]] Trace drop_sparse_nodes(const Trace& trace,
                                      std::size_t min_records,
                                      std::vector<NodeId>* kept = nullptr);

/// Remove landmarks with fewer than `min_records` total visits; landmark
/// ids are compacted and visits at removed landmarks dropped.
[[nodiscard]] Trace drop_rare_landmarks(const Trace& trace,
                                        std::size_t min_records,
                                        std::vector<LandmarkId>* kept = nullptr);

/// 2-D point for AP positions.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Single-linkage clustering of access points: APs within
/// `max_distance` of any member of a cluster join the cluster (the
/// paper's "mapped APs within 1.5 km into one landmark").  Returns, for
/// each AP index, its cluster (landmark) id; ids are dense from 0.
[[nodiscard]] std::vector<LandmarkId> cluster_access_points(
    const std::vector<Point>& ap_positions, double max_distance);

/// Remove a node's movement from time `t` on — the "carrier failure"
/// fault model (a phone dies, a bus is withdrawn): visits starting
/// after `t` are dropped, a visit spanning `t` is clipped.  Packets the
/// node carries at failure time are lost to TTL expiry, since the node
/// never associates with a landmark again.
[[nodiscard]] Trace remove_node_after(const Trace& trace, NodeId node,
                                      double t);

/// Re-map the landmark ids of a trace through `mapping` (old -> new);
/// `num_new_landmarks` sizes the new universe.  Visits made adjacent at
/// the same new landmark are merged when the gap is <= `merge_gap`.
[[nodiscard]] Trace remap_landmarks(const Trace& trace,
                                    const std::vector<LandmarkId>& mapping,
                                    std::size_t num_new_landmarks,
                                    double merge_gap = 0.0);

}  // namespace dtn::trace
