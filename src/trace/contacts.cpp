#include "trace/contacts.hpp"

#include <algorithm>
#include <map>

#include "util/stats.hpp"

namespace dtn::trace {

std::vector<Contact> derive_contacts(const Trace& trace) {
  // Bucket visits per landmark, then intersect intervals pairwise.
  std::vector<std::vector<Visit>> per_landmark(trace.num_landmarks());
  for (NodeId n = 0; n < trace.num_nodes(); ++n) {
    for (const auto& v : trace.visits(n)) {
      per_landmark[v.landmark].push_back(v);
    }
  }
  std::vector<Contact> contacts;
  for (LandmarkId l = 0; l < trace.num_landmarks(); ++l) {
    auto& visits = per_landmark[l];
    std::sort(visits.begin(), visits.end(),
              [](const Visit& x, const Visit& y) { return x.start < y.start; });
    for (std::size_t i = 0; i < visits.size(); ++i) {
      for (std::size_t j = i + 1; j < visits.size(); ++j) {
        if (visits[j].start >= visits[i].end) break;  // sorted: no overlap
        if (visits[i].node == visits[j].node) continue;
        Contact c;
        c.a = std::min(visits[i].node, visits[j].node);
        c.b = std::max(visits[i].node, visits[j].node);
        c.place = l;
        c.start = visits[j].start;
        c.end = std::min(visits[i].end, visits[j].end);
        if (c.end > c.start) contacts.push_back(c);
      }
    }
  }
  std::sort(contacts.begin(), contacts.end(),
            [](const Contact& x, const Contact& y) { return x.start < y.start; });
  return contacts;
}

ContactStats analyze_contacts(const Trace& trace,
                              const std::vector<Contact>& contacts) {
  ContactStats s;
  s.contacts = contacts.size();
  RunningStats duration;
  std::map<std::pair<NodeId, NodeId>, std::vector<double>> pair_starts;
  for (const auto& c : contacts) {
    duration.add(c.duration());
    pair_starts[{c.a, c.b}].push_back(c.start);
  }
  s.pairs_met = pair_starts.size();
  s.mean_duration = duration.mean();
  RunningStats gaps;
  for (auto& [pair, starts] : pair_starts) {
    std::sort(starts.begin(), starts.end());
    for (std::size_t i = 1; i < starts.size(); ++i) {
      gaps.add(starts[i] - starts[i - 1]);
    }
  }
  s.mean_intercontact = gaps.mean();
  const double node_days = static_cast<double>(trace.num_nodes()) *
                           std::max(trace.duration() / kDay, 1e-9);
  s.contacts_per_node_day = static_cast<double>(contacts.size()) / node_days;
  return s;
}

std::vector<double> intercontact_times(const std::vector<Contact>& contacts,
                                       NodeId a, NodeId b) {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  std::vector<double> starts;
  for (const auto& c : contacts) {
    if (c.a == lo && c.b == hi) starts.push_back(c.start);
  }
  std::sort(starts.begin(), starts.end());
  std::vector<double> gaps;
  for (std::size_t i = 1; i < starts.size(); ++i) {
    gaps.push_back(starts[i] - starts[i - 1]);
  }
  return gaps;
}

}  // namespace dtn::trace
