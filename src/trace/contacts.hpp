// Contact derivation and analysis.
//
// Two nodes are in contact while co-located at the same landmark — the
// same notion of communication opportunity the simulator's
// `on_contact` uses.  Contact-duration and inter-contact-time
// distributions are the classic DTN trace analyses; deployment planners
// use them to sanity-check a mobility trace before committing landmark
// hardware.
#pragma once

#include <vector>

#include "trace/trace.hpp"

namespace dtn::trace {

/// One co-location interval of a node pair (a < b) at a landmark.
struct Contact {
  NodeId a = 0;
  NodeId b = 0;
  LandmarkId place = 0;
  double start = 0.0;
  double end = 0.0;

  [[nodiscard]] double duration() const { return end - start; }
};

/// All pairwise co-location intervals, sorted by start time.
/// O(sum over landmarks of visits^2) — fine for the trace sizes here.
[[nodiscard]] std::vector<Contact> derive_contacts(const Trace& trace);

/// Aggregate contact statistics.
struct ContactStats {
  std::size_t contacts = 0;
  std::size_t pairs_met = 0;          ///< distinct node pairs that ever met
  double mean_duration = 0.0;         ///< seconds
  double mean_intercontact = 0.0;     ///< seconds between a pair's contacts
  double contacts_per_node_day = 0.0;
};

[[nodiscard]] ContactStats analyze_contacts(const Trace& trace,
                                            const std::vector<Contact>& contacts);

/// Gaps between successive contacts of one pair (for inter-contact-time
/// distributions); empty when the pair met fewer than twice.
[[nodiscard]] std::vector<double> intercontact_times(
    const std::vector<Contact>& contacts, NodeId a, NodeId b);

}  // namespace dtn::trace
