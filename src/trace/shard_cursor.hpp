// Trace-event splitting for the sharded replay engine.
//
// `TraceCursor` merges per-node visit streams into one global
// (time, seq) order.  The sharded engine instead partitions the same
// events by the landmark each visit belongs to: every shard replays the
// arrivals/departures of its own landmarks in (time, seq) order, and the
// shard coordinator inserts boundary epochs so that a node's departure
// from one shard is globally ordered before its arrival at the next
// (sim/shard_coordinator.hpp).
//
// Sequence numbers replicate TraceCursor's node-major enumeration
// bit-for-bit (seq = seq_base[node] + 2 * visit + phase), so a sharded
// run and a serial run execute the same events under the same keys.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/event.hpp"
#include "sim/shard_coordinator.hpp"
#include "trace/trace.hpp"

namespace dtn::trace {

/// One trace event, compressed to its (time, seq) key plus the node and
/// packed visit index / phase (phase 0 = arrival, 1 = departure).
struct ShardEventRef {
  double time = 0.0;
  std::uint64_t seq = 0;
  NodeId node = 0;
  std::uint32_t visit_and_phase = 0;

  [[nodiscard]] sim::EventKey key() const { return {time, seq}; }
};

/// Expand a ref back into the full engine event (same fields TraceCursor
/// would have produced).
[[nodiscard]] inline sim::Event materialize(const ShardEventRef& ref) {
  sim::Event ev{};
  ev.time = ref.time;
  ev.seq = ref.seq;
  ev.kind = (ref.visit_and_phase & 1u) ? sim::EventKind::kDeparture
                                       : sim::EventKind::kArrival;
  ev.a = ref.node;
  ev.b = ref.visit_and_phase >> 1;  // visit index
  return ev;
}

/// Total visits per landmark — the load weight `assign_shards` balances.
[[nodiscard]] std::vector<std::uint64_t> landmark_visit_weights(
    const Trace& trace);

struct TraceShardSplit {
  /// Per-shard event streams, each sorted ascending by (time, seq).
  std::vector<std::vector<ShardEventRef>> events;
  /// Cross-shard node migrations (departure/arrival key pairs) the
  /// barrier plan must separate.
  std::vector<sim::MigrationEdge> migrations;
  /// Sum of all per-shard stream sizes == TraceCursor::total_events().
  std::uint64_t total_events = 0;
};

/// Split the trace's replay events by `landmark_shard` (one shard id per
/// landmark, values < num_shards).  Requires a finalized trace.
[[nodiscard]] TraceShardSplit split_trace_events(
    const Trace& trace, std::span<const std::uint32_t> landmark_shard,
    std::size_t num_shards);

}  // namespace dtn::trace
