#include "trace/geo_generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace dtn::trace {

std::vector<Point> fig15_positions() {
  return {
      {0.0, 0.0},       // L1 library (center of campus)
      {-250.0, 150.0},  // L2 department
      {-60.0, 260.0},   // L3 student center
      {220.0, 180.0},   // L4 department
      {-180.0, -220.0}, // L5 department
      {90.0, -260.0},   // L6 dining
      {260.0, -160.0},  // L7 department
      {330.0, 30.0},    // L8 dining
  };
}

namespace {

double distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

Trace generate_geo_trace(const GeoTraceConfig& cfg) {
  const std::size_t m = cfg.landmark_positions.size();
  DTN_ASSERT(m >= 2);
  DTN_ASSERT(cfg.num_nodes > 0);
  DTN_ASSERT(cfg.speed_m_per_s > 0.0);
  DTN_ASSERT(cfg.attraction.empty() || cfg.attraction.size() == m);
  DTN_ASSERT(cfg.homes.empty() || cfg.homes.size() == cfg.num_nodes);

  std::vector<double> attraction = cfg.attraction;
  if (attraction.empty()) attraction.assign(m, 1.0);

  Rng rng(cfg.seed);
  Trace trace(cfg.num_nodes, m);
  for (NodeId n = 0; n < cfg.num_nodes; ++n) {
    Rng node_rng = rng.split(n);
    const LandmarkId home =
        cfg.homes.empty() ? static_cast<LandmarkId>(n % m) : cfg.homes[n];
    DTN_ASSERT(home < m);

    for (std::size_t day = 0; day < static_cast<std::size_t>(cfg.days);
         ++day) {
      double now = static_cast<double>(day) * kDay +
                   (cfg.day_start_hour + node_rng.uniform(0.0, 0.75)) * kHour;
      const double day_end =
          static_cast<double>(day) * kDay + cfg.day_end_hour * kHour;
      LandmarkId here = home;
      while (now < day_end) {
        const double stay = node_rng.lognormal(
            std::log(cfg.mean_stay_minutes * kMinute) -
                0.5 * cfg.stay_sigma * cfg.stay_sigma,
            cfg.stay_sigma);
        const double end = std::min(now + std::max(stay, kMinute), day_end);
        if (end <= now) break;
        if (!node_rng.bernoulli(cfg.miss_probability)) {
          trace.add_visit(Visit{n, here, now, end});
        }
        // Pick the next landmark: home pull when away, attraction else.
        LandmarkId next = here;
        if (here != home && node_rng.bernoulli(cfg.home_bias)) {
          next = home;
        } else {
          std::vector<double> weights = attraction;
          weights[here] = 0.0;
          next = static_cast<LandmarkId>(node_rng.discrete(weights));
        }
        // Walk there: travel time from the map.
        const double dist =
            distance(cfg.landmark_positions[here], cfg.landmark_positions[next]);
        const double travel =
            std::max(kMinute, dist / cfg.speed_m_per_s *
                                  node_rng.uniform(1.0 - cfg.travel_noise,
                                                   1.0 + cfg.travel_noise));
        now = end + travel;
        here = next;
      }
    }
  }
  trace.finalize();
  return trace;
}

Trace visits_from_position_samples(std::vector<PositionSample> samples,
                                   const std::vector<Point>& landmark_positions,
                                   std::size_t num_nodes,
                                   double association_radius,
                                   double max_fix_gap, double min_visit) {
  DTN_ASSERT(!landmark_positions.empty());
  DTN_ASSERT(association_radius > 0.0);
  DTN_ASSERT(max_fix_gap > 0.0);
  std::sort(samples.begin(), samples.end(),
            [](const PositionSample& a, const PositionSample& b) {
              if (a.node != b.node) return a.node < b.node;
              return a.time < b.time;
            });
  const double r2 = association_radius * association_radius;
  Trace trace(num_nodes, landmark_positions.size());

  // Current open association per node.
  LandmarkId open_landmark = kNoLandmark;
  double open_start = 0.0;
  double open_last = 0.0;
  NodeId open_node = kNoNode;
  auto close_open = [&] {
    if (open_landmark == kNoLandmark) return;
    const double end = std::max(open_last, open_start + 1.0);
    if (end - open_start >= min_visit) {
      trace.add_visit(Visit{open_node, open_landmark, open_start, end});
    }
    open_landmark = kNoLandmark;
  };

  for (const auto& s : samples) {
    DTN_ASSERT(s.node < num_nodes);
    // Nearest landmark within the association radius, ties to lower id.
    LandmarkId at = kNoLandmark;
    double best = r2;
    for (std::size_t l = 0; l < landmark_positions.size(); ++l) {
      const double dx = s.position.x - landmark_positions[l].x;
      const double dy = s.position.y - landmark_positions[l].y;
      const double d2 = dx * dx + dy * dy;
      if (d2 < best) {
        best = d2;
        at = static_cast<LandmarkId>(l);
      }
    }
    const bool continues = open_landmark != kNoLandmark &&
                           s.node == open_node && at == open_landmark &&
                           s.time - open_last <= max_fix_gap &&
                           s.time >= open_last;
    if (continues) {
      open_last = s.time;
      continue;
    }
    close_open();
    if (at != kNoLandmark) {
      open_node = s.node;
      open_landmark = at;
      open_start = s.time;
      open_last = s.time;
    }
  }
  close_open();
  trace.finalize();
  return trace;
}

}  // namespace dtn::trace
