#include "trace/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace dtn::trace {

void write_trace_csv(const Trace& trace, std::ostream& out) {
  out << "node,landmark,start,end\n";
  for (const auto& v : trace.all_visits_sorted()) {
    out << v.node << ',' << v.landmark << ',' << v.start << ',' << v.end
        << '\n';
  }
}

void write_trace_csv(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_trace_csv: cannot open " + path);
  write_trace_csv(trace, out);
  if (!out) throw std::runtime_error("write_trace_csv: write failed " + path);
}

namespace {

struct RawVisit {
  std::uint32_t node;
  std::uint32_t landmark;
  double start;
  double end;
};

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t pos = 0;
  while (true) {
    const auto comma = line.find(',', pos);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(pos));
      break;
    }
    fields.push_back(line.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return fields;
}

double parse_double(std::string_view s, const std::string& source,
                    int line_no) {
  // std::from_chars for double is available in GCC 11+.
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error("trace CSV: " + source + ": bad number at line " +
                             std::to_string(line_no));
  }
  return v;
}

std::uint32_t parse_u32(std::string_view s, const std::string& source,
                        int line_no) {
  std::uint32_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error("trace CSV: " + source + ": bad id at line " +
                             std::to_string(line_no));
  }
  return v;
}

}  // namespace

Trace read_trace_csv(std::istream& in, const std::string& source) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("trace CSV: " + source + ": empty input");
  }
  if (line != "node,landmark,start,end") {
    throw std::runtime_error("trace CSV: " + source +
                             ": unexpected header: " + line);
  }
  std::vector<RawVisit> raw;
  std::uint32_t max_node = 0;
  std::uint32_t max_landmark = 0;
  int line_no = 1;
  bool final_line_unterminated = false;
  while (std::getline(in, line)) {
    // getline sets eofbit (but still succeeds) when it read characters
    // up to EOF without finding '\n' — i.e. the file was cut mid-record.
    // A truncated trailing record can otherwise parse silently with a
    // wrong value ("...,27.5" cut to "...,2"), which is exactly the
    // corruption a crashed writer leaves behind; crash-resume reads must
    // reject it rather than ingest it (docs/checkpointing.md).
    final_line_unterminated = in.eof();
    ++line_no;
    if (final_line_unterminated) break;  // reject below, before parsing:
    // the cut line may *also* fail field validation, and a validation
    // error would mislabel what is really a torn write.
    if (line.empty()) continue;
    const auto fields = split_fields(line);
    if (fields.size() != 4) {
      throw std::runtime_error("trace CSV: " + source +
                               ": expected 4 fields at line " +
                               std::to_string(line_no));
    }
    RawVisit v{parse_u32(fields[0], source, line_no),
               parse_u32(fields[1], source, line_no),
               parse_double(fields[2], source, line_no),
               parse_double(fields[3], source, line_no)};
    if (v.end <= v.start) {
      throw std::runtime_error("trace CSV: " + source +
                               ": end <= start at line " +
                               std::to_string(line_no));
    }
    max_node = std::max(max_node, v.node);
    max_landmark = std::max(max_landmark, v.landmark);
    raw.push_back(v);
  }
  if (in.bad()) {
    throw std::runtime_error("trace CSV: " + source +
                             ": I/O error while reading near line " +
                             std::to_string(line_no));
  }
  if (final_line_unterminated) {
    throw std::runtime_error(
        "trace CSV: " + source + ": truncated final record at line " +
        std::to_string(line_no) +
        " (no trailing newline; file cut mid-record?)");
  }
  Trace trace(raw.empty() ? 0 : max_node + 1, raw.empty() ? 0 : max_landmark + 1);
  for (const auto& v : raw) {
    trace.add_visit(Visit{v.node, v.landmark, v.start, v.end});
  }
  trace.finalize();
  return trace;
}

Trace read_trace_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_trace_csv: cannot open " + path);
  // Thread the path into every parse error: "bad number at line 7" is
  // useless in a batch run over a directory of traces.
  return read_trace_csv(in, path);
}

}  // namespace dtn::trace
