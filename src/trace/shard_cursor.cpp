#include "trace/shard_cursor.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dtn::trace {

std::vector<std::uint64_t> landmark_visit_weights(const Trace& trace) {
  DTN_ASSERT(trace.finalized());
  std::vector<std::uint64_t> weights(trace.num_landmarks(), 0);
  for (NodeId n = 0; n < trace.num_nodes(); ++n) {
    for (const Visit& v : trace.visits(n)) ++weights[v.landmark];
  }
  return weights;
}

TraceShardSplit split_trace_events(
    const Trace& trace, std::span<const std::uint32_t> landmark_shard,
    std::size_t num_shards) {
  DTN_ASSERT(trace.finalized());
  DTN_ASSERT(landmark_shard.size() == trace.num_landmarks());
  DTN_ASSERT(num_shards >= 1);

  TraceShardSplit split;
  split.events.resize(num_shards);

  // Pre-size each shard's stream so the fill loop never reallocates.
  std::vector<std::size_t> counts(num_shards, 0);
  for (NodeId n = 0; n < trace.num_nodes(); ++n) {
    for (const Visit& v : trace.visits(n)) {
      DTN_ASSERT(landmark_shard[v.landmark] < num_shards);
      counts[landmark_shard[v.landmark]] += 2;
    }
  }
  for (std::size_t s = 0; s < num_shards; ++s) {
    split.events[s].reserve(counts[s]);
  }

  // Node-major walk replicating TraceCursor's seq assignment:
  // seq = seq_base[node] + 2 * visit + phase.
  std::uint64_t seq_base = 0;
  for (NodeId n = 0; n < trace.num_nodes(); ++n) {
    const auto visits = trace.visits(n);
    std::uint32_t prev_shard = 0;
    sim::EventKey prev_dep{};
    for (std::uint32_t vi = 0; vi < visits.size(); ++vi) {
      const Visit& v = visits[vi];
      const std::uint32_t shard = landmark_shard[v.landmark];
      const std::uint64_t arr_seq = seq_base + 2ull * vi;
      auto& stream = split.events[shard];
      stream.push_back({v.start, arr_seq, n, (vi << 1) | 0u});
      stream.push_back({v.end, arr_seq + 1, n, (vi << 1) | 1u});
      if (vi > 0 && shard != prev_shard) {
        split.migrations.push_back({prev_dep, {v.start, arr_seq}});
      }
      prev_shard = shard;
      prev_dep = {v.end, arr_seq + 1};
    }
    seq_base += 2ull * visits.size();
  }
  split.total_events = seq_base;

  // Per-node streams are emitted in key order but the node-major
  // concatenation is not globally sorted.
  for (auto& stream : split.events) {
    std::sort(stream.begin(), stream.end(),
              [](const ShardEventRef& a, const ShardEventRef& b) {
                if (a.time != b.time) return a.time < b.time;
                return a.seq < b.seq;
              });
  }
  return split;
}

}  // namespace dtn::trace
