// Lazy trace-replay cursor.
//
// A finalized Trace stores, per node, a time-sorted, non-overlapping
// visit list.  Each visit contributes exactly two simulation events —
// an arrival at `start` and a departure at `end` — and within one node
// those events are already in (time, seq) order (end > start, and the
// next visit starts no earlier than the previous one ends).  So the
// whole replay is a k-way merge of per-node event streams, advanced by
// a small heap keyed on (time, seq): O(log num_nodes) per event, zero
// allocations, and no materialization of the millions of upfront
// closures the old engine pre-scheduled.
//
// Sequence numbers replicate the retired eager enumeration exactly
// (node-major: node 0's visit 0 arrival, visit 0 departure, visit 1
// arrival, ..., then node 1, ...), so tie order at identical timestamps
// — and therefore every downstream RunCounters bit — is unchanged.
// The engine must reserve [0, total_events()) for the cursor via
// Simulator::set_seq_floor.
//
// The cursor is a cheap view: it borrows the immutable Trace (shared
// across replicate runs) and owns only the per-node positions and the
// merge heap, both O(num_nodes).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event.hpp"
#include "trace/trace.hpp"

namespace dtn::persist {
class Writer;
class Reader;
}  // namespace dtn::persist

namespace dtn::trace {

class TraceCursor final : public sim::EventSource {
 public:
  explicit TraceCursor(const Trace& trace);

  [[nodiscard]] bool exhausted() const override { return heap_.empty(); }
  [[nodiscard]] const sim::Event& peek() const override {
    DTN_ASSERT(!heap_.empty());
    return current_;
  }
  void advance() override;

  /// Total events the full replay produces (2 per visit).
  [[nodiscard]] std::uint64_t total_events() const { return total_events_; }

  /// Rewind to the beginning of the trace.
  void reset();

  // -- checkpointing (src/persist/, docs/checkpointing.md) --------------
  /// Serialize the replay positions (the trace itself is immutable input
  /// and is fingerprinted, not stored).
  void save(persist::Writer& w) const;
  /// The same byte layout from externally derived positions (the
  /// sharded engine reconstructs them from per-node histories at a unit
  /// barrier).
  static void save_image(persist::Writer& w,
                         const std::vector<std::uint32_t>& positions);
  /// Restore the positions saved by save()/save_image() and rebuild the
  /// merge heap.  Throws persist::FormatError on node-count or position
  /// range mismatches.
  void load(persist::Reader& r);

 private:
  /// Heap entry with the (time, seq) key packed into two u64s: for the
  /// non-negative finite times a finalized trace holds, the IEEE-754
  /// bit pattern orders exactly like the double, so the hot sift
  /// compares integers instead of branching on a double tie
  /// (the packed-event-key idiom of sim/event_queue.hpp).
  struct Head {
    std::uint64_t time_bits;  ///< bit pattern of the event time (>= 0)
    std::uint64_t seq;        ///< global sequence of that event
    NodeId node;
  };

  /// (time, seq) of node `n`'s event at per-node index `e`.
  [[nodiscard]] Head head_of(NodeId n, std::uint32_t e) const;
  void materialize_top();
  void sift_down(std::size_t i);
  /// Rebuild the merge heap from the current pos_ values (Floyd).
  void rebuild_heap();

  const Trace* trace_;
  /// Next per-node event index (2 * visit + {0 arrival, 1 departure}).
  std::vector<std::uint32_t> pos_;
  /// Sequence base per node: 2 * (visits of all lower-numbered nodes).
  std::vector<std::uint64_t> seq_base_;
  std::vector<Head> heap_;  // quaternary min-heap by (time, seq)
  sim::Event current_;      // materialized top of the merge
  std::uint64_t total_events_ = 0;
};

}  // namespace dtn::trace
