#include "trace/preprocess.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

namespace dtn::trace {

Trace merge_neighboring_visits(const Trace& trace, double max_gap_seconds) {
  DTN_ASSERT(max_gap_seconds >= 0.0);
  Trace out(trace.num_nodes(), trace.num_landmarks());
  for (NodeId n = 0; n < trace.num_nodes(); ++n) {
    const auto visits = trace.visits(n);
    std::size_t i = 0;
    while (i < visits.size()) {
      Visit merged = visits[i];
      std::size_t j = i + 1;
      while (j < visits.size() && visits[j].landmark == merged.landmark &&
             visits[j].start - merged.end <= max_gap_seconds) {
        merged.end = std::max(merged.end, visits[j].end);
        ++j;
      }
      out.add_visit(merged);
      i = j;
    }
  }
  out.finalize();
  return out;
}

Trace drop_short_visits(const Trace& trace, double min_duration_seconds) {
  Trace out(trace.num_nodes(), trace.num_landmarks());
  for (NodeId n = 0; n < trace.num_nodes(); ++n) {
    for (const auto& v : trace.visits(n)) {
      if (v.end - v.start >= min_duration_seconds) out.add_visit(v);
    }
  }
  out.finalize();
  return out;
}

Trace drop_sparse_nodes(const Trace& trace, std::size_t min_records,
                        std::vector<NodeId>* kept) {
  std::vector<NodeId> surviving;
  for (NodeId n = 0; n < trace.num_nodes(); ++n) {
    if (trace.visits(n).size() >= min_records) surviving.push_back(n);
  }
  Trace out(surviving.size(), trace.num_landmarks());
  for (NodeId new_id = 0; new_id < surviving.size(); ++new_id) {
    for (const auto& v : trace.visits(surviving[new_id])) {
      out.add_visit(Visit{new_id, v.landmark, v.start, v.end});
    }
  }
  out.finalize();
  if (kept != nullptr) *kept = std::move(surviving);
  return out;
}

Trace drop_rare_landmarks(const Trace& trace, std::size_t min_records,
                          std::vector<LandmarkId>* kept) {
  std::vector<std::size_t> totals(trace.num_landmarks(), 0);
  for (NodeId n = 0; n < trace.num_nodes(); ++n) {
    for (const auto& v : trace.visits(n)) ++totals[v.landmark];
  }
  std::vector<LandmarkId> surviving;
  std::vector<LandmarkId> mapping(trace.num_landmarks(), kNoLandmark);
  for (LandmarkId l = 0; l < trace.num_landmarks(); ++l) {
    if (totals[l] >= min_records) {
      mapping[l] = static_cast<LandmarkId>(surviving.size());
      surviving.push_back(l);
    }
  }
  Trace out(trace.num_nodes(), surviving.size());
  for (NodeId n = 0; n < trace.num_nodes(); ++n) {
    for (const auto& v : trace.visits(n)) {
      if (mapping[v.landmark] == kNoLandmark) continue;
      out.add_visit(Visit{v.node, mapping[v.landmark], v.start, v.end});
    }
  }
  out.finalize();
  if (kept != nullptr) *kept = std::move(surviving);
  return out;
}

std::vector<LandmarkId> cluster_access_points(
    const std::vector<Point>& ap_positions, double max_distance) {
  DTN_ASSERT(max_distance >= 0.0);
  const std::size_t n = ap_positions.size();
  // Union-find over APs; link every pair within range (O(n^2), fine for
  // the hundreds of APs a DNET-scale deployment sees).
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  const double d2 = max_distance * max_distance;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = ap_positions[i].x - ap_positions[j].x;
      const double dy = ap_positions[i].y - ap_positions[j].y;
      if (dx * dx + dy * dy <= d2) {
        parent[find(i)] = find(j);
      }
    }
  }
  std::vector<LandmarkId> cluster(n, kNoLandmark);
  LandmarkId next = 0;
  std::vector<LandmarkId> root_to_cluster(n, kNoLandmark);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = find(i);
    if (root_to_cluster[r] == kNoLandmark) root_to_cluster[r] = next++;
    cluster[i] = root_to_cluster[r];
  }
  return cluster;
}

Trace remove_node_after(const Trace& trace, NodeId node, double t) {
  DTN_ASSERT(node < trace.num_nodes());
  Trace out(trace.num_nodes(), trace.num_landmarks());
  for (NodeId n = 0; n < trace.num_nodes(); ++n) {
    for (const auto& v : trace.visits(n)) {
      if (n == node) {
        if (v.start >= t) continue;
        Visit clipped = v;
        clipped.end = std::min(v.end, t);
        if (clipped.end > clipped.start) out.add_visit(clipped);
      } else {
        out.add_visit(v);
      }
    }
  }
  out.finalize();
  return out;
}

Trace remap_landmarks(const Trace& trace,
                      const std::vector<LandmarkId>& mapping,
                      std::size_t num_new_landmarks, double merge_gap) {
  DTN_ASSERT(mapping.size() == trace.num_landmarks());
  Trace out(trace.num_nodes(), num_new_landmarks);
  for (NodeId n = 0; n < trace.num_nodes(); ++n) {
    for (const auto& v : trace.visits(n)) {
      const LandmarkId nl = mapping[v.landmark];
      if (nl == kNoLandmark) continue;
      DTN_ASSERT(nl < num_new_landmarks);
      out.add_visit(Visit{v.node, nl, v.start, v.end});
    }
  }
  out.finalize();
  return merge_gap > 0.0 ? merge_neighboring_visits(out, merge_gap) : out;
}

}  // namespace dtn::trace
