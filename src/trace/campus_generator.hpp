// Synthetic campus trace generator (DART-like substitute).
//
// The paper's DART trace is a 119-day campus WLAN log (320 students /
// 159 buildings after preprocessing).  We cannot redistribute it, so
// this generator produces traces with the same *statistical structure*
// the paper's design rests on:
//
//  O1  skewed visiting: each landmark is visited frequently by only a
//      small fraction of nodes (community structure + Zipf popularity);
//  O2  few transit links carry most bandwidth;
//  O3  matching links are near-symmetric (movement is round-trip-ish:
//      dorm -> class -> library -> dorm);
//  O4  per-link bandwidth is stable over time units, except holiday
//      windows where campus activity collapses (the Fig. 4 dips);
//  ~77% order-1 Markov predictability with missing records (devices
//      that are off produce gaps, as in the real WLAN log).
//
// Mechanics: each node belongs to a community with a small home set of
// buildings; movement is a per-node first-order habit chain (with
// probability `habit_probability` the node goes to its habitual next
// building, otherwise it samples its preference distribution), run over
// a diurnal weekday/weekend/holiday schedule.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "trace/trace.hpp"

namespace dtn::trace {

struct CampusTraceConfig {
  std::size_t num_nodes = 120;
  std::size_t num_landmarks = 40;
  std::size_t num_communities = 8;
  /// Buildings in a community's home set (department + dorm + favourites).
  std::size_t community_landmarks = 6;
  double days = 40.0;

  /// Global landmark popularity (library-type hubs), Zipf exponent.
  double zipf_exponent = 0.9;
  /// Probability a move follows the node's habitual successor —
  /// dominates order-1 predictability (paper measures ~0.77 on DART).
  double habit_probability = 0.80;
  /// Of the non-habit moves, fraction that stays inside the community
  /// home set (drives observation O1).
  double community_bias = 0.8;

  double mean_stay_minutes = 55.0;
  double stay_sigma = 0.6;  ///< lognormal sigma of stay durations
  double mean_travel_minutes = 8.0;
  double day_start_hour = 8.0;
  double day_end_hour = 21.0;

  /// Probability a node is active on a weekend day.
  double weekend_activity = 0.35;
  /// [start_day, end_day) windows with `holiday_activity` (Fig. 4 dips);
  /// defaults to one mid-trace break when left empty and `add_default_holiday`.
  std::vector<std::pair<double, double>> holidays;
  bool add_default_holiday = true;
  double holiday_activity = 0.06;

  /// Probability an individual visit goes unrecorded (device off) —
  /// the incompleteness that makes order-1 beat order-2/3 (§IV-B.3).
  double miss_probability = 0.12;

  std::uint64_t seed = 1;
};

/// Paper-scale configuration (320 nodes, 159 landmarks, 119 days).
[[nodiscard]] CampusTraceConfig dart_scale_config(std::uint64_t seed = 1);

[[nodiscard]] Trace generate_campus_trace(const CampusTraceConfig& config);

}  // namespace dtn::trace
