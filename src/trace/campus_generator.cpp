#include "trace/campus_generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace dtn::trace {

CampusTraceConfig dart_scale_config(std::uint64_t seed) {
  CampusTraceConfig c;
  c.num_nodes = 320;
  c.num_landmarks = 159;
  c.num_communities = 16;
  c.community_landmarks = 8;
  c.days = 119.0;
  // Long traces over many landmarks dilute per-context evidence; a
  // slightly stronger habit keeps the measured order-1 accuracy at the
  // paper's ~0.77 (Fig. 6).
  c.habit_probability = 0.86;
  c.seed = seed;
  return c;
}

namespace {

/// Per-node mobility profile: preference weights and habitual successors.
struct NodeProfile {
  std::vector<double> preference;      // weight per landmark
  std::vector<LandmarkId> habit_next;  // habitual successor per landmark
  LandmarkId home = 0;                 // where the day starts (dorm)
};

NodeProfile make_profile(const CampusTraceConfig& cfg,
                         const std::vector<std::vector<LandmarkId>>& communities,
                         std::size_t community, const ZipfSampler& zipf,
                         Rng& rng) {
  NodeProfile p;
  p.preference.assign(cfg.num_landmarks, 0.0);
  // Non-home component: a few *personal favourite* landmarks sampled by
  // global (Zipf) popularity, not a diffuse tail over every landmark.
  // This keeps observation O1 true even for the most popular places:
  // each landmark's visits are concentrated in its community plus a few
  // individual fans, never spread evenly over the whole population.
  const std::size_t num_favorites = std::min<std::size_t>(3, cfg.num_landmarks);
  std::vector<LandmarkId> favorites;
  for (int attempt = 0; attempt < 64 && favorites.size() < num_favorites;
       ++attempt) {
    const auto fav = static_cast<LandmarkId>(zipf.sample(rng));
    // Distinct favourites: a repeated draw would make one node a
    // *frequent* visitor of a hub, eroding observation O1.
    if (std::find(favorites.begin(), favorites.end(), fav) == favorites.end()) {
      favorites.push_back(fav);
    }
  }
  for (const LandmarkId fav : favorites) {
    p.preference[fav] += (1.0 - cfg.community_bias) /
                         static_cast<double>(num_favorites);
  }
  // Dominant community component with per-node jitter, so two nodes of
  // one community are similar but not identical.
  const auto& home_set = communities[community];
  for (LandmarkId l : home_set) {
    p.preference[l] += cfg.community_bias * rng.uniform(0.5, 1.5) /
                       static_cast<double>(home_set.size());
  }
  p.home = home_set[rng.uniform_index(home_set.size())];
  // Habitual successor per landmark: sampled once from the preference
  // distribution (excluding self); this fixed map is what the order-1
  // Markov predictor can learn.
  p.habit_next.assign(cfg.num_landmarks, 0);
  for (LandmarkId l = 0; l < cfg.num_landmarks; ++l) {
    for (int attempt = 0; attempt < 16; ++attempt) {
      const auto cand =
          static_cast<LandmarkId>(rng.discrete(p.preference));
      if (cand != l) {
        p.habit_next[l] = cand;
        break;
      }
      p.habit_next[l] = (l + 1) % static_cast<LandmarkId>(cfg.num_landmarks);
    }
  }
  return p;
}

LandmarkId sample_next(const CampusTraceConfig& cfg, const NodeProfile& p,
                       LandmarkId current, Rng& rng) {
  if (rng.bernoulli(cfg.habit_probability) && p.habit_next[current] != current) {
    return p.habit_next[current];
  }
  for (int attempt = 0; attempt < 16; ++attempt) {
    const auto cand = static_cast<LandmarkId>(rng.discrete(p.preference));
    if (cand != current) return cand;
  }
  return (current + 1) % static_cast<LandmarkId>(cfg.num_landmarks);
}

}  // namespace

Trace generate_campus_trace(const CampusTraceConfig& cfg) {
  DTN_ASSERT(cfg.num_nodes > 0);
  DTN_ASSERT(cfg.num_landmarks >= 2);
  DTN_ASSERT(cfg.num_communities > 0);
  DTN_ASSERT(cfg.habit_probability >= 0.0 && cfg.habit_probability <= 1.0);

  Rng rng(cfg.seed);
  const ZipfSampler zipf(cfg.num_landmarks, cfg.zipf_exponent);

  // Community home sets: each community owns a handful of "department"
  // landmarks, dealt round-robin so every landmark belongs to some
  // community.  Inter-community traffic comes from the per-node
  // favourite landmarks (popular hubs emerge from the Zipf sampling in
  // `make_profile` rather than from universally shared home sets —
  // otherwise the top landmarks would violate observation O1).
  std::vector<std::vector<LandmarkId>> communities(cfg.num_communities);
  {
    LandmarkId next_own = 0;
    for (std::size_t c = 0; c < cfg.num_communities; ++c) {
      auto& set = communities[c];
      for (std::size_t k = 0; k < cfg.community_landmarks; ++k) {
        set.push_back(next_own);
        next_own = (next_own + 1) % static_cast<LandmarkId>(cfg.num_landmarks);
      }
      std::sort(set.begin(), set.end());
      set.erase(std::unique(set.begin(), set.end()), set.end());
    }
  }

  auto holidays = cfg.holidays;
  if (holidays.empty() && cfg.add_default_holiday && cfg.days >= 20.0) {
    // One break window at ~60-70% through the trace (Thanksgiving-like).
    holidays.emplace_back(cfg.days * 0.60, cfg.days * 0.70);
  }
  const auto in_holiday = [&](double day) {
    return std::any_of(holidays.begin(), holidays.end(), [&](const auto& h) {
      return day >= h.first && day < h.second;
    });
  };

  Trace trace(cfg.num_nodes, cfg.num_landmarks);
  for (NodeId n = 0; n < cfg.num_nodes; ++n) {
    Rng node_rng = rng.split(n);
    const std::size_t community = n % cfg.num_communities;
    const NodeProfile profile =
        make_profile(cfg, communities, community, zipf, node_rng);

    for (std::size_t day = 0; day < static_cast<std::size_t>(cfg.days); ++day) {
      const bool weekend = (day % 7 == 5) || (day % 7 == 6);
      double activity = 1.0;
      if (weekend) activity = cfg.weekend_activity;
      if (in_holiday(static_cast<double>(day))) activity = cfg.holiday_activity;
      if (!node_rng.bernoulli(activity)) continue;

      double t = static_cast<double>(day) * kDay +
                 (cfg.day_start_hour + node_rng.uniform(-0.5, 1.0)) * kHour;
      const double day_end =
          static_cast<double>(day) * kDay + cfg.day_end_hour * kHour;
      LandmarkId current = profile.home;
      while (t < day_end) {
        const double stay =
            node_rng.lognormal(std::log(cfg.mean_stay_minutes * kMinute) -
                                   0.5 * cfg.stay_sigma * cfg.stay_sigma,
                               cfg.stay_sigma);
        const double end = std::min(t + std::max(stay, kMinute), day_end);
        if (end <= t) break;
        if (!node_rng.bernoulli(cfg.miss_probability)) {
          trace.add_visit(Visit{n, current, t, end});
        }
        const double travel =
            node_rng.exponential(cfg.mean_travel_minutes * kMinute) + kMinute;
        t = end + travel;
        current = sample_next(cfg, profile, current, node_rng);
      }
    }
  }
  trace.finalize();
  return trace;
}

}  // namespace dtn::trace
