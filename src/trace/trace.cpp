#include "trace/trace.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dtn::trace {

Trace::Trace(std::size_t num_nodes, std::size_t num_landmarks)
    : num_landmarks_(num_landmarks), per_node_(num_nodes) {}

void Trace::add_visit(const Visit& v) {
  DTN_ASSERT(!finalized_);
  DTN_ASSERT(v.node < per_node_.size());
  DTN_ASSERT(v.landmark < num_landmarks_);
  DTN_ASSERT(v.end > v.start);
  per_node_[v.node].push_back(v);
}

void Trace::finalize() {
  DTN_ASSERT(!finalized_);
  for (auto& visits : per_node_) {
    std::sort(visits.begin(), visits.end(),
              [](const Visit& a, const Visit& b) { return a.start < b.start; });
    for (std::size_t i = 1; i < visits.size(); ++i) {
      // Visits of one node must not overlap: it is at one place at a time.
      DTN_ASSERT(visits[i].start >= visits[i - 1].end);
    }
  }
  finalized_ = true;
}

std::span<const Visit> Trace::visits(NodeId node) const {
  DTN_ASSERT(finalized_);
  DTN_ASSERT(node < per_node_.size());
  return per_node_[node];
}

std::size_t Trace::total_visits() const {
  std::size_t n = 0;
  for (const auto& v : per_node_) n += v.size();
  return n;
}

double Trace::begin_time() const {
  DTN_ASSERT(finalized_);
  double t = std::numeric_limits<double>::infinity();
  for (const auto& visits : per_node_) {
    if (!visits.empty()) t = std::min(t, visits.front().start);
  }
  return std::isfinite(t) ? t : 0.0;
}

double Trace::end_time() const {
  DTN_ASSERT(finalized_);
  double t = -std::numeric_limits<double>::infinity();
  for (const auto& visits : per_node_) {
    for (const auto& v : visits) t = std::max(t, v.end);
  }
  return std::isfinite(t) ? t : 0.0;
}

std::vector<Visit> Trace::all_visits_sorted() const {
  DTN_ASSERT(finalized_);
  std::vector<Visit> all;
  all.reserve(total_visits());
  for (const auto& visits : per_node_) {
    all.insert(all.end(), visits.begin(), visits.end());
  }
  std::sort(all.begin(), all.end(),
            [](const Visit& a, const Visit& b) { return a.start < b.start; });
  return all;
}

std::vector<Transit> Trace::transits(NodeId node) const {
  DTN_ASSERT(finalized_);
  DTN_ASSERT(node < per_node_.size());
  const auto& visits = per_node_[node];
  std::vector<Transit> out;
  for (std::size_t i = 1; i < visits.size(); ++i) {
    if (visits[i].landmark == visits[i - 1].landmark) continue;
    out.push_back(Transit{node, visits[i - 1].landmark, visits[i].landmark,
                          visits[i - 1].end, visits[i].start});
  }
  return out;
}

std::vector<Transit> Trace::all_transits_sorted() const {
  std::vector<Transit> all;
  for (NodeId n = 0; n < per_node_.size(); ++n) {
    auto t = transits(n);
    all.insert(all.end(), t.begin(), t.end());
  }
  std::sort(all.begin(), all.end(),
            [](const Transit& a, const Transit& b) { return a.arrive < b.arrive; });
  return all;
}

Trace Trace::window(double t0, double t1) const {
  DTN_ASSERT(finalized_);
  DTN_ASSERT(t1 > t0);
  Trace out(per_node_.size(), num_landmarks_);
  for (const auto& visits : per_node_) {
    for (const auto& v : visits) {
      const double s = std::max(v.start, t0);
      const double e = std::min(v.end, t1);
      if (e > s) {
        out.add_visit(Visit{v.node, v.landmark, s, e});
      }
    }
  }
  out.finalize();
  return out;
}

}  // namespace dtn::trace
