// Geographic trace generator: mobility grounded in landmark *positions*.
//
// Unlike the campus/bus generators (whose travel gaps are sampled),
// here travel times follow from Euclidean distances and a movement
// speed, so the trace is consistent with a physical deployment map —
// the missing piece between §IV-A's landmark selection / subarea
// division (which operate on positions) and the trace-driven simulator.
// `fig15_positions()` provides the paper's campus deployment layout.
//
// Movement model: each node has a home landmark (department building)
// and a per-node attraction profile over the other landmarks; every
// move samples the attraction, with a bias toward the home set, and the
// node walks there at `speed_m_per_s` (with jitter).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/preprocess.hpp"  // trace::Point
#include "trace/trace.hpp"

namespace dtn::trace {

struct GeoTraceConfig {
  /// Required: one position per landmark (meters).
  std::vector<Point> landmark_positions;
  std::size_t num_nodes = 9;
  double days = 12.0;
  std::uint64_t seed = 9;

  double speed_m_per_s = 1.4;  ///< walking pace
  /// Multiplicative jitter on travel times (uniform ±fraction).
  double travel_noise = 0.3;

  double day_start_hour = 8.0;
  double day_end_hour = 21.0;
  double mean_stay_minutes = 50.0;
  double stay_sigma = 0.5;  ///< lognormal sigma

  /// Global attraction weight per landmark (empty = uniform).  E.g. a
  /// library gets a high weight, dorms low.
  std::vector<double> attraction;
  /// Probability a move targets the node's home landmark when away
  /// from it (students gravitate back to their department).
  double home_bias = 0.35;
  /// Home landmark per node (empty = round-robin over landmarks).
  std::vector<LandmarkId> homes;

  /// Probability a visit goes unrecorded.
  double miss_probability = 0.05;
};

[[nodiscard]] Trace generate_geo_trace(const GeoTraceConfig& config);

/// The eight-landmark layout of the paper's Fig. 15(a) campus
/// deployment: index 0 = L1 (library), 1/3/4/6 = the department
/// buildings L2/L4/L5/L7, 2/5/7 = student center and dining L3/L6/L8.
/// Coordinates in meters.
[[nodiscard]] std::vector<Point> fig15_positions();

/// One GPS-style position fix.
struct PositionSample {
  NodeId node = 0;
  double time = 0.0;
  Point position;
};

/// Convert raw position fixes (GPS logs, ONE-simulator movement
/// reports) into landmark visits — how a real deployment's data enters
/// the library.  A node is "at" a landmark while its fixes stay within
/// `association_radius` of it; consecutive qualifying fixes fuse into
/// one visit, a gap longer than `max_fix_gap` (or a fix elsewhere)
/// closes it.  Visits shorter than `min_visit` are discarded.  Samples
/// may arrive in any order; ties resolve toward the nearest landmark.
[[nodiscard]] Trace visits_from_position_samples(
    std::vector<PositionSample> samples,
    const std::vector<Point>& landmark_positions, std::size_t num_nodes,
    double association_radius, double max_fix_gap = 900.0,
    double min_visit = 60.0);

}  // namespace dtn::trace
