#include "trace/bus_generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace dtn::trace {

BusTraceConfig dnet_scale_config(std::uint64_t seed) {
  BusTraceConfig c;
  c.seed = seed;
  return c;
}

std::vector<std::vector<LandmarkId>> make_bus_routes(const BusTraceConfig& cfg) {
  DTN_ASSERT(cfg.num_landmarks >= cfg.route_length_max);
  DTN_ASSERT(cfg.route_length_min >= 2);
  DTN_ASSERT(cfg.route_length_min <= cfg.route_length_max);
  DTN_ASSERT(cfg.num_hubs < cfg.num_landmarks);
  Rng rng(cfg.seed ^ 0x5ca1ab1eULL);
  std::vector<std::vector<LandmarkId>> routes(cfg.num_routes);
  // Non-hub stops dealt round-robin so every landmark appears on some
  // route; hubs are prepended to every route.
  LandmarkId next_stop = static_cast<LandmarkId>(cfg.num_hubs);
  for (std::size_t r = 0; r < cfg.num_routes; ++r) {
    auto& route = routes[r];
    route.push_back(static_cast<LandmarkId>(r % cfg.num_hubs));
    const std::size_t len = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(cfg.route_length_min),
        static_cast<std::int64_t>(cfg.route_length_max)));
    while (route.size() < len) {
      if (std::find(route.begin(), route.end(), next_stop) == route.end()) {
        route.push_back(next_stop);
      }
      next_stop = next_stop + 1 >= cfg.num_landmarks
                      ? static_cast<LandmarkId>(cfg.num_hubs)
                      : next_stop + 1;
    }
  }
  return routes;
}

Trace generate_bus_trace(const BusTraceConfig& cfg) {
  DTN_ASSERT(cfg.num_buses > 0);
  const auto routes = make_bus_routes(cfg);
  Rng rng(cfg.seed);

  Trace trace(cfg.num_buses, cfg.num_landmarks);
  for (NodeId bus = 0; bus < cfg.num_buses; ++bus) {
    Rng bus_rng = rng.split(bus);
    std::vector<LandmarkId> route = routes[bus % routes.size()];
    // Half the fleet serves each route in the reverse direction, so the
    // aggregate transit matrix is symmetric (observation O3) while each
    // individual bus stays order-1 predictable.
    if ((bus / routes.size()) % 2 == 1) {
      std::reverse(route.begin(), route.end());
    }
    // Stagger departures so buses on one route are spread along it.
    const double stagger =
        bus_rng.uniform(0.0, 0.6) * static_cast<double>(route.size()) *
        cfg.inter_stop_minutes * kMinute;

    for (std::size_t day = 0; day < static_cast<std::size_t>(cfg.days); ++day) {
      const bool weekend = (day % 7 == 5) || (day % 7 == 6);
      if (weekend && cfg.weekdays_only) continue;

      double t = static_cast<double>(day) * kDay +
                 cfg.service_start_hour * kHour + stagger;
      const double service_end =
          static_cast<double>(day) * kDay + cfg.service_end_hour * kHour;
      std::size_t idx = 0;
      while (t < service_end) {
        const double dwell =
            cfg.stop_dwell_minutes * kMinute *
            bus_rng.uniform(1.0 - cfg.schedule_noise, 1.0 + cfg.schedule_noise);
        const double end = std::min(t + std::max(dwell, 30.0), service_end);
        if (end <= t) break;

        // AP association at this stop: maybe missed, maybe recorded as a
        // neighbouring stop's AP (the ambiguity that hurts prediction).
        if (!bus_rng.bernoulli(cfg.miss_probability)) {
          LandmarkId recorded = route[idx];
          if (bus_rng.bernoulli(cfg.alias_probability)) {
            const std::size_t neighbor =
                bus_rng.bernoulli(0.5) ? (idx + 1) % route.size()
                                       : (idx + route.size() - 1) % route.size();
            recorded = route[neighbor];
          }
          trace.add_visit(Visit{bus, recorded, t, end});
        }

        const double travel =
            cfg.inter_stop_minutes * kMinute *
            bus_rng.uniform(1.0 - cfg.schedule_noise, 1.0 + cfg.schedule_noise);
        t = end + std::max(travel, kMinute);
        idx = (idx + 1) % route.size();
      }
    }
  }
  trace.finalize();
  return trace;
}

}  // namespace dtn::trace
