// Synthetic bus trace generator (DNET-like substitute).
//
// The paper's DNET trace covers 34 UMass Transit buses seen at 18
// clustered roadside AP locations over 26 days.  This generator
// reproduces the structural properties the paper relies on:
//
//  * buses loop fixed cyclic routes during weekday service hours, so
//    per-link bandwidth is very stable over time units (Fig. 4(b));
//  * routes share downtown hub stops, so a few links dominate (O2) and
//    matching links are symmetric because loops traverse both ways (O3);
//  * roadside APs are flaky and ambiguous: associations are missed with
//    `miss_probability` and recorded as a *neighbouring* stop with
//    `alias_probability` — which is exactly why the paper measures
//    *lower* order-1 prediction accuracy (~0.66) on DNET than on the
//    campus trace despite more repetitive mobility (§IV-B.3).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace dtn::trace {

struct BusTraceConfig {
  std::size_t num_buses = 34;
  std::size_t num_landmarks = 18;
  std::size_t num_routes = 10;
  std::size_t route_length_min = 4;
  std::size_t route_length_max = 8;
  /// Stops shared by (almost) every route — the downtown transfer hubs.
  std::size_t num_hubs = 3;
  double days = 26.0;

  double stop_dwell_minutes = 4.0;
  double inter_stop_minutes = 9.0;
  /// Multiplicative jitter on dwell/travel times (uniform ±fraction).
  double schedule_noise = 0.25;
  double service_start_hour = 6.5;
  double service_end_hour = 22.0;
  bool weekdays_only = true;

  /// Probability an association is simply missed.
  double miss_probability = 0.18;
  /// Probability the bus associates with an AP of the adjacent stop.
  double alias_probability = 0.22;

  std::uint64_t seed = 2;
};

/// Paper-scale configuration (34 buses, 18 landmarks, 26 days) — the
/// defaults already match; provided for symmetry with the campus module.
[[nodiscard]] BusTraceConfig dnet_scale_config(std::uint64_t seed = 2);

[[nodiscard]] Trace generate_bus_trace(const BusTraceConfig& config);

/// The per-route stop sequences the generator would use (exposed for
/// tests and the trace explorer example).
[[nodiscard]] std::vector<std::vector<LandmarkId>> make_bus_routes(
    const BusTraceConfig& config);

}  // namespace dtn::trace
