#include "trace/city_generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace dtn::trace {

CityTraceConfig city_scale_config(std::uint64_t seed) {
  CityTraceConfig c;
  c.num_pedestrians = 100000;
  c.num_buses = 800;
  c.num_landmarks = 2500;
  c.num_districts = 64;
  // One day keeps the event count in benchmark territory (a few million
  // visits) while exercising the full diurnal cycle.
  c.days = 1.0;
  c.mean_stay_minutes = 45.0;
  c.seed = seed;
  return c;
}

namespace {

struct CityLayout {
  LandmarkId num_hubs = 0;
  std::vector<std::vector<LandmarkId>> districts;
};

CityLayout make_layout(const CityTraceConfig& cfg) {
  CityLayout layout;
  layout.num_hubs = std::clamp<LandmarkId>(
      static_cast<LandmarkId>(static_cast<double>(cfg.num_landmarks) *
                              cfg.hub_fraction),
      1, static_cast<LandmarkId>(cfg.num_landmarks - 1));
  layout.districts.resize(cfg.num_districts);
  for (LandmarkId l = layout.num_hubs;
       l < static_cast<LandmarkId>(cfg.num_landmarks); ++l) {
    // Contiguous blocks, remainder dealt round-robin by the division.
    const std::size_t span = cfg.num_landmarks - layout.num_hubs;
    const std::size_t d = static_cast<std::size_t>(l - layout.num_hubs) *
                          cfg.num_districts / span;
    layout.districts[d].push_back(l);
  }
  // Tiny configs can leave a district empty; fall back to a hub so every
  // district has at least one landmark to walk.
  for (auto& district : layout.districts) {
    if (district.empty()) district.push_back(0);
  }
  return layout;
}

}  // namespace

Trace generate_city_trace(const CityTraceConfig& cfg) {
  DTN_ASSERT(cfg.num_pedestrians + cfg.num_buses > 0);
  DTN_ASSERT(cfg.num_landmarks >= 2);
  DTN_ASSERT(cfg.num_districts > 0);
  DTN_ASSERT(cfg.days > 0.0);

  const CityLayout layout = make_layout(cfg);
  Rng rng(cfg.seed);
  const ZipfSampler hub_zipf(layout.num_hubs, cfg.zipf_exponent);

  const auto num_nodes =
      static_cast<std::size_t>(cfg.num_pedestrians + cfg.num_buses);
  Trace trace(num_nodes, cfg.num_landmarks);

  const auto num_days = static_cast<std::size_t>(std::ceil(cfg.days));

  // Pedestrians: home-district walks with occasional hub trips.
  for (NodeId n = 0; n < static_cast<NodeId>(cfg.num_pedestrians); ++n) {
    Rng node_rng = rng.split(n);
    const auto& home = layout.districts[n % cfg.num_districts];
    for (std::size_t day = 0; day < num_days; ++day) {
      double t = static_cast<double>(day) * kDay +
                 (cfg.day_start_hour + node_rng.uniform(0.0, 2.0)) * kHour;
      const double day_end = std::min(
          static_cast<double>(day) * kDay + cfg.day_end_hour * kHour,
          cfg.days * kDay);
      LandmarkId current = home[node_rng.uniform_index(home.size())];
      while (t < day_end) {
        const double stay =
            node_rng.exponential(cfg.mean_stay_minutes * kMinute) + kMinute;
        const double end = std::min(t + stay, day_end);
        if (end <= t) break;
        trace.add_visit(Visit{n, current, t, end});
        const double travel =
            node_rng.exponential(cfg.mean_travel_minutes * kMinute) + kMinute;
        t = end + travel;
        LandmarkId next = current;
        if (node_rng.bernoulli(cfg.trip_probability)) {
          next = static_cast<LandmarkId>(hub_zipf.sample(node_rng));
        } else {
          next = home[node_rng.uniform_index(home.size())];
        }
        if (next == current && cfg.num_landmarks > 1) {
          next = (next + 1) % static_cast<LandmarkId>(cfg.num_landmarks);
        }
        current = next;
      }
    }
  }

  // Buses: fixed routes alternating a hub and a district landmark,
  // sweeping across consecutive districts, driven all day.
  for (std::size_t b = 0; b < cfg.num_buses; ++b) {
    const auto n = static_cast<NodeId>(cfg.num_pedestrians + b);
    Rng node_rng = rng.split(n);
    std::vector<LandmarkId> route;
    route.reserve(std::max<std::size_t>(cfg.bus_route_stops, 2));
    for (std::size_t s = 0; s < std::max<std::size_t>(cfg.bus_route_stops, 2);
         ++s) {
      if (s % 2 == 0) {
        route.push_back(static_cast<LandmarkId>(hub_zipf.sample(node_rng)));
      } else {
        const auto& district =
            layout.districts[(b + s / 2) % cfg.num_districts];
        route.push_back(district[node_rng.uniform_index(district.size())]);
      }
    }
    for (std::size_t day = 0; day < num_days; ++day) {
      double t = static_cast<double>(day) * kDay +
                 (cfg.day_start_hour + node_rng.uniform(0.0, 0.5)) * kHour;
      const double day_end = std::min(
          static_cast<double>(day) * kDay + cfg.day_end_hour * kHour,
          cfg.days * kDay);
      std::size_t stop = 0;
      LandmarkId prev = kNoLandmark;
      while (t < day_end) {
        const LandmarkId at = route[stop % route.size()];
        const double dwell =
            cfg.bus_dwell_minutes * kMinute * node_rng.uniform(0.8, 1.2);
        const double end = std::min(t + dwell, day_end);
        // Consecutive route stops can alias onto one landmark; merging
        // them into distinct visits is fine for the replay engine, but
        // skip zero-length stops.
        if (end > t && at != prev) {
          trace.add_visit(Visit{n, at, t, end});
          prev = at;
        }
        t = end + cfg.bus_hop_minutes * kMinute * node_rng.uniform(0.7, 1.3);
        ++stop;
      }
    }
  }

  trace.finalize();
  return trace;
}

}  // namespace dtn::trace
