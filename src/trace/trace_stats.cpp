#include "trace/trace_stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace dtn::trace {

FlatMatrix<std::uint64_t> visit_count_matrix(const Trace& trace) {
  FlatMatrix<std::uint64_t> counts(trace.num_nodes(), trace.num_landmarks());
  for (NodeId n = 0; n < trace.num_nodes(); ++n) {
    for (const auto& v : trace.visits(n)) {
      ++counts.at(n, v.landmark);
    }
  }
  return counts;
}

std::vector<LandmarkId> landmarks_by_popularity(const Trace& trace) {
  std::vector<std::uint64_t> totals(trace.num_landmarks(), 0);
  for (NodeId n = 0; n < trace.num_nodes(); ++n) {
    for (const auto& v : trace.visits(n)) ++totals[v.landmark];
  }
  std::vector<LandmarkId> order(trace.num_landmarks());
  for (LandmarkId l = 0; l < trace.num_landmarks(); ++l) order[l] = l;
  std::stable_sort(order.begin(), order.end(), [&](LandmarkId a, LandmarkId b) {
    return totals[a] > totals[b];
  });
  return order;
}

FlatMatrix<std::uint64_t> transit_count_matrix(const Trace& trace) {
  FlatMatrix<std::uint64_t> counts(trace.num_landmarks(), trace.num_landmarks());
  for (NodeId n = 0; n < trace.num_nodes(); ++n) {
    for (const auto& t : trace.transits(n)) {
      ++counts.at(t.from, t.to);
    }
  }
  return counts;
}

std::vector<LinkBandwidth> link_bandwidths(const Trace& trace,
                                           double time_unit) {
  DTN_ASSERT(time_unit > 0.0);
  const auto counts = transit_count_matrix(trace);
  const double units = std::max(1.0, trace.duration() / time_unit);
  std::vector<LinkBandwidth> links;
  for (LandmarkId i = 0; i < trace.num_landmarks(); ++i) {
    for (LandmarkId j = 0; j < trace.num_landmarks(); ++j) {
      const auto c = counts.at(i, j);
      if (c == 0) continue;
      links.push_back(LinkBandwidth{i, j, static_cast<double>(c) / units});
    }
  }
  std::sort(links.begin(), links.end(),
            [](const LinkBandwidth& a, const LinkBandwidth& b) {
              return a.bandwidth > b.bandwidth;
            });
  return links;
}

std::vector<double> link_bandwidth_series(const Trace& trace, LandmarkId from,
                                          LandmarkId to, double time_unit) {
  DTN_ASSERT(time_unit > 0.0);
  const double t0 = trace.begin_time();
  const double dur = trace.duration();
  const auto units = static_cast<std::size_t>(std::ceil(dur / time_unit));
  std::vector<double> series(std::max<std::size_t>(units, 1), 0.0);
  for (NodeId n = 0; n < trace.num_nodes(); ++n) {
    for (const auto& t : trace.transits(n)) {
      if (t.from != from || t.to != to) continue;
      auto idx = static_cast<std::size_t>((t.arrive - t0) / time_unit);
      idx = std::min(idx, series.size() - 1);
      series[idx] += 1.0;
    }
  }
  return series;
}

double matching_link_symmetry(const Trace& trace) {
  const auto counts = transit_count_matrix(trace);
  std::vector<double> fwd, rev;
  for (LandmarkId i = 0; i < trace.num_landmarks(); ++i) {
    for (LandmarkId j = i + 1; j < trace.num_landmarks(); ++j) {
      const double a = counts.at(i, j);
      const double b = counts.at(j, i);
      if (a + b == 0.0) continue;
      fwd.push_back(a);
      rev.push_back(b);
    }
  }
  if (fwd.size() < 2) return 1.0;
  return pearson_correlation(fwd, rev);
}

TraceCharacteristics characterize(const Trace& trace) {
  TraceCharacteristics c;
  c.num_nodes = trace.num_nodes();
  c.num_landmarks = trace.num_landmarks();
  c.num_visits = trace.total_visits();
  c.duration_days = trace.duration() / kDay;
  RunningStats visit_minutes;
  std::size_t transits = 0;
  for (NodeId n = 0; n < trace.num_nodes(); ++n) {
    for (const auto& v : trace.visits(n)) {
      visit_minutes.add((v.end - v.start) / kMinute);
    }
    transits += trace.transits(n).size();
  }
  c.num_transits = transits;
  c.mean_visit_minutes = visit_minutes.mean();
  const double node_days =
      static_cast<double>(trace.num_nodes()) * std::max(c.duration_days, 1e-9);
  c.mean_transits_per_node_day = static_cast<double>(transits) / node_days;
  return c;
}

}  // namespace dtn::trace
