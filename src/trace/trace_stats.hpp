// Trace analytics backing the paper's §III-B observations and the
// figure-2/3/4 benches: visiting distributions, transit-link bandwidths
// and their time series.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"
#include "util/flat_matrix.hpp"

namespace dtn::trace {

/// Visits per (node, landmark): how often each node visited each place.
/// 64-bit cells: city-scale traces (trace/city_generator.hpp) put count
/// aggregates past what 32 bits can safely hold.
[[nodiscard]] FlatMatrix<std::uint64_t> visit_count_matrix(const Trace& trace);

/// Landmarks ordered by total visit count, most visited first.
[[nodiscard]] std::vector<LandmarkId> landmarks_by_popularity(const Trace& trace);

/// Transit counts per directed landmark pair over the whole trace.
[[nodiscard]] FlatMatrix<std::uint64_t> transit_count_matrix(const Trace& trace);

/// A directed transit link with its measured bandwidth (average node
/// transits per time unit — the paper's B(l_i -> l_j)).
struct LinkBandwidth {
  LandmarkId from = 0;
  LandmarkId to = 0;
  double bandwidth = 0.0;
};

/// Bandwidth of every link with at least one transit, sorted descending
/// by bandwidth.  `time_unit` is the measurement unit in seconds (paper:
/// 3 days for DART, 0.5 day for DNET).
[[nodiscard]] std::vector<LinkBandwidth> link_bandwidths(const Trace& trace,
                                                         double time_unit);

/// Per-time-unit transit counts of one directed link across the whole
/// trace duration (for the Fig. 4 stability series).
[[nodiscard]] std::vector<double> link_bandwidth_series(const Trace& trace,
                                                        LandmarkId from,
                                                        LandmarkId to,
                                                        double time_unit);

/// Symmetry of matching links (O3): Pearson correlation between
/// B(i->j) and B(j->i) over all unordered pairs with traffic.
[[nodiscard]] double matching_link_symmetry(const Trace& trace);

/// Characteristics row for Table I.
struct TraceCharacteristics {
  std::size_t num_nodes = 0;
  std::size_t num_landmarks = 0;
  std::size_t num_visits = 0;
  std::size_t num_transits = 0;
  double duration_days = 0.0;
  double mean_visit_minutes = 0.0;
  double mean_transits_per_node_day = 0.0;
};
[[nodiscard]] TraceCharacteristics characterize(const Trace& trace);

}  // namespace dtn::trace
