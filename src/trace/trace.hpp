// Mobility traces: the common substrate every router and experiment
// consumes.
//
// A trace is, per node, a time-sorted sequence of landmark visits
// `(node, landmark, start, end)` — exactly the schema obtained from the
// paper's preprocessing of the DART and DNET logs (§III-B.1).  Real
// traces in that CSV schema load through `trace_io`; synthetic
// generators produce the same structure.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace dtn::trace {

using NodeId = std::uint32_t;
using LandmarkId = std::uint32_t;

/// Sentinel for "not at any landmark" (in transit).
inline constexpr LandmarkId kNoLandmark = static_cast<LandmarkId>(-1);
/// Sentinel node id ("no node").
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Simulation times are seconds as double; one day in seconds.
inline constexpr double kDay = 86400.0;
inline constexpr double kHour = 3600.0;
inline constexpr double kMinute = 60.0;

/// One stay of one node at one landmark.
struct Visit {
  NodeId node = 0;
  LandmarkId landmark = 0;
  double start = 0.0;  ///< association time (seconds)
  double end = 0.0;    ///< disassociation time (seconds), end > start

  friend bool operator==(const Visit&, const Visit&) = default;
};

/// A transit: node moved from one landmark to a different one.
/// `depart` is when it left `from`; `arrive` is when it reached `to`.
struct Transit {
  NodeId node = 0;
  LandmarkId from = 0;
  LandmarkId to = 0;
  double depart = 0.0;
  double arrive = 0.0;
};

/// Immutable-after-build container of visits for a fixed node/landmark
/// universe.  Visits are stored per node, sorted by start time, and are
/// non-overlapping within a node (enforced by `validate`).
class Trace {
 public:
  /// Empty trace (0 nodes / 0 landmarks), useful as a placeholder
  /// before assignment; finalize() still applies.
  Trace() : Trace(0, 0) {}
  Trace(std::size_t num_nodes, std::size_t num_landmarks);

  /// Append a visit (any order); call `finalize` before reading.
  void add_visit(const Visit& v);

  /// Sort per-node visits and check invariants.  Must be called exactly
  /// once after the last `add_visit`.
  void finalize();

  [[nodiscard]] std::size_t num_nodes() const { return per_node_.size(); }
  [[nodiscard]] std::size_t num_landmarks() const { return num_landmarks_; }
  [[nodiscard]] bool finalized() const { return finalized_; }

  /// Visits of one node, sorted by start time.
  [[nodiscard]] std::span<const Visit> visits(NodeId node) const;

  /// Total number of visit records.
  [[nodiscard]] std::size_t total_visits() const;

  /// Earliest visit start / latest visit end over all nodes (0 if empty).
  [[nodiscard]] double begin_time() const;
  [[nodiscard]] double end_time() const;
  [[nodiscard]] double duration() const { return end_time() - begin_time(); }

  /// All visits merged and sorted by start time (copies).
  [[nodiscard]] std::vector<Visit> all_visits_sorted() const;

  /// Consecutive-visit transits of one node (adjacent visits at
  /// *different* landmarks; same-landmark re-visits are not transits).
  [[nodiscard]] std::vector<Transit> transits(NodeId node) const;

  /// All transits over all nodes, sorted by arrival time.
  [[nodiscard]] std::vector<Transit> all_transits_sorted() const;

  /// Restrict to visits overlapping [t0, t1); visits are clipped to the
  /// window.  Node/landmark universe is preserved.
  [[nodiscard]] Trace window(double t0, double t1) const;

 private:
  std::size_t num_landmarks_;
  std::vector<std::vector<Visit>> per_node_;
  bool finalized_ = false;
};

}  // namespace dtn::trace
