#include "trace/cursor.hpp"

#include <algorithm>
#include <bit>
#include <string>

#include "persist/serializer.hpp"

namespace dtn::trace {

namespace {

[[nodiscard]] inline bool earlier_head(std::uint64_t ta, std::uint64_t sa,
                                       std::uint64_t tb, std::uint64_t sb) {
  // Packed comparison: time bit patterns order like the doubles they
  // encode (non-negative times only, asserted where heads are built).
  if (ta != tb) return ta < tb;
  return sa < sb;
}

}  // namespace

TraceCursor::TraceCursor(const Trace& trace) : trace_(&trace) {
  DTN_ASSERT(trace.finalized());
  const std::size_t n = trace.num_nodes();
  pos_.resize(n, 0);
  seq_base_.resize(n, 0);
  std::uint64_t base = 0;
  for (std::size_t i = 0; i < n; ++i) {
    seq_base_[i] = base;
    base += 2 * trace.visits(static_cast<NodeId>(i)).size();
  }
  total_events_ = base;
  reset();
}

TraceCursor::Head TraceCursor::head_of(NodeId n, std::uint32_t e) const {
  const Visit& v = trace_->visits(n)[e / 2];
  const double t = (e % 2 == 0) ? v.start : v.end;
  DTN_ASSERT(t >= 0.0);  // the packed-key ordering needs this
  return Head{std::bit_cast<std::uint64_t>(t), seq_base_[n] + e, n};
}

void TraceCursor::reset() {
  for (std::size_t i = 0; i < pos_.size(); ++i) pos_[i] = 0;
  rebuild_heap();
}

void TraceCursor::rebuild_heap() {
  heap_.clear();
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    const auto n = static_cast<NodeId>(i);
    if (pos_[i] < 2 * trace_->visits(n).size()) {
      heap_.push_back(head_of(n, pos_[i]));
    }
  }
  // Floyd heap construction over the quaternary layout: every internal
  // node is a parent of heap_.size() - 1 or earlier, i.e. at most
  // (size - 2) / 4.
  if (heap_.size() >= 2) {
    for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) sift_down(i);
  }
  if (!heap_.empty()) materialize_top();
}

void TraceCursor::save(persist::Writer& w) const { save_image(w, pos_); }

void TraceCursor::save_image(persist::Writer& w,
                             const std::vector<std::uint32_t>& positions) {
  w.u64(positions.size());
  for (const std::uint32_t p : positions) w.u32(p);
}

void TraceCursor::load(persist::Reader& r) {
  const auto n = static_cast<std::size_t>(r.u64());
  if (n != pos_.size()) {
    throw persist::FormatError(
        "checkpoint cursor image disagrees with the trace node count");
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t p = r.u32();
    if (p > 2 * trace_->visits(static_cast<NodeId>(i)).size()) {
      throw persist::FormatError(
          "checkpoint cursor position out of range for node " +
          std::to_string(i));
    }
    pos_[i] = p;
  }
  rebuild_heap();
}

void TraceCursor::materialize_top() {
  const Head& top = heap_.front();
  const std::uint32_t e = pos_[top.node];
  current_.time = std::bit_cast<double>(top.time_bits);
  current_.seq = top.seq;
  current_.kind = (e % 2 == 0) ? sim::EventKind::kArrival
                               : sim::EventKind::kDeparture;
  current_.a = top.node;
  current_.b = e / 2;  // visit index
}

void TraceCursor::advance() {
  DTN_ASSERT(!heap_.empty());
  const NodeId n = heap_.front().node;
  const std::uint32_t e = ++pos_[n];
  if (e < 2 * trace_->visits(n).size()) {
    // Replace the top with the node's next event and restore the heap:
    // one sift instead of a pop + push pair.
    heap_.front() = head_of(n, e);
    sift_down(0);
  } else {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
  if (!heap_.empty()) materialize_top();
}

void TraceCursor::sift_down(std::size_t i) {
  // Quaternary layout: half the levels of a binary heap, so the
  // replace-top sift after every advance() touches half the cache
  // lines.  The heap's internal arrangement never leaks — extraction
  // follows the total (time_bits, seq) order (seq is unique), so the
  // replay event order is identical to the binary layout's.
  const std::size_t n = heap_.size();
  Head item = heap_[i];
  while (true) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + 4, n);
    std::size_t child = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier_head(heap_[c].time_bits, heap_[c].seq,
                       heap_[child].time_bits, heap_[child].seq)) {
        child = c;
      }
    }
    if (!earlier_head(heap_[child].time_bits, heap_[child].seq,
                      item.time_bits, item.seq)) {
      break;
    }
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = item;
}

}  // namespace dtn::trace
