// Landmark selection and subarea division (§IV-A).
//
// Landmark selection takes candidate popular places (position + visit
// frequency) and greedily keeps the most-visited places subject to the
// paper's spacing rule: of every two candidates closer than
// `min_distance`, the less-visited one is removed.  Subarea division
// assigns every point of the field to its nearest landmark (the area
// between two landmarks is split evenly), which yields exactly the
// paper's three rules: one landmark per subarea, even split, no overlap.
#pragma once

#include <span>
#include <vector>

#include "trace/preprocess.hpp"  // trace::Point
#include "trace/trace.hpp"

namespace dtn::core {

struct CandidatePlace {
  trace::Point position;
  double visit_count = 0.0;
};

/// Indices (into `candidates`) of the selected landmarks, ordered by
/// decreasing visit count.  `max_landmarks == 0` means unlimited.
[[nodiscard]] std::vector<std::size_t> select_landmarks(
    std::span<const CandidatePlace> candidates, double min_distance,
    std::size_t max_landmarks = 0);

/// Nearest-landmark (Voronoi) subarea assignment: for each query point,
/// the id of the closest landmark (ties break to the lower id).
[[nodiscard]] std::vector<trace::LandmarkId> assign_subareas(
    std::span<const trace::Point> points,
    std::span<const trace::Point> landmark_positions);

/// Squared Euclidean distance helper shared by the selection pipeline.
[[nodiscard]] double squared_distance(const trace::Point& a,
                                      const trace::Point& b);

}  // namespace dtn::core
