// Distributed transit-link bandwidth learning — the faithful §IV-C.1
// protocol.
//
// Each landmark observes its *incoming* links directly (arriving nodes
// report the landmark they came from).  Its *outgoing* bandwidth
// B(l_i -> l_j) is measured at the far end l_j, so l_i learns it from
//
//  * reverse-notification tokens: when l_j predicts a node is about to
//    leave it for l_i, it hands the node the latest per-unit count
//    n_t(i -> j) with its time-unit sequence number; l_i folds the
//    count into its outgoing EWMA iff the sequence is newer than the
//    last received (stale tokens are discarded, as in the paper), and
//  * the symmetry observation O3 as the fallback: for units in which no
//    token arrived, l_i substitutes its *own* observed count of the
//    reverse link n_t(j -> i).
//
// `BandwidthEstimator` (bandwidth.hpp) is the centralized shortcut that
// assumes the information flow is instantaneous; this class is the
// distributed variant whose estimates lag by the token latency.  The
// tests bound the divergence between the two.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "trace/trace.hpp"
#include "util/flat_matrix.hpp"

namespace dtn::persist {
class Writer;
class Reader;
}  // namespace dtn::persist

namespace dtn::core {

/// The reverse-notification payload carried by a mobile node from the
/// measuring landmark back to the link's source (§IV-C.1).
struct BandwidthToken {
  trace::LandmarkId link_from = 0;  ///< the link is link_from -> link_to
  trace::LandmarkId link_to = 0;    ///< ... measured at link_to
  double count = 0.0;               ///< transits in the reported unit
  std::uint64_t unit = 0;           ///< time-unit sequence of the report
};

class DistributedBandwidth {
 public:
  DistributedBandwidth(std::size_t num_landmarks, double rho);

  /// A node arrived at `to` reporting previous landmark `from`
  /// (observed by `to`; counted in the open unit).
  void record_arrival(trace::LandmarkId from, trace::LandmarkId to);

  /// Issue the token a node departing `at` toward predicted landmark
  /// `predicted` should carry: the report of link predicted -> at
  /// (nullopt when there is nothing to report yet).
  [[nodiscard]] std::optional<BandwidthToken> issue_token(
      trace::LandmarkId at, trace::LandmarkId predicted) const;

  /// Deliver a carried token to landmark `at`; discarded unless
  /// `at == token.link_from` and the sequence is newer than the last
  /// accepted report for that link.  Returns whether it was accepted.
  bool deliver_token(trace::LandmarkId at, const BandwidthToken& token);

  /// Close the measurement unit everywhere: fold observed incoming
  /// counts into the incoming EWMAs, and update each outgoing EWMA from
  /// the freshest token received this unit or the symmetry fallback.
  void close_unit();

  /// The estimate landmark `from` holds for its own outgoing link —
  /// what its distance-vector table uses.
  [[nodiscard]] double outgoing_bandwidth(trace::LandmarkId from,
                                          trace::LandmarkId to) const;

  /// The estimate landmark `to` holds for an incoming link (directly
  /// observed).
  [[nodiscard]] double incoming_bandwidth(trace::LandmarkId from,
                                          trace::LandmarkId to) const;

  [[nodiscard]] double expected_delay(trace::LandmarkId from,
                                      trace::LandmarkId to,
                                      double time_unit_seconds) const;

  [[nodiscard]] std::vector<trace::LandmarkId> neighbors(
      trace::LandmarkId from) const;

  [[nodiscard]] std::uint64_t units_closed() const { return unit_; }
  [[nodiscard]] std::uint64_t tokens_accepted() const {
    return tokens_accepted_;
  }
  [[nodiscard]] std::uint64_t tokens_stale() const { return tokens_stale_; }

  // -- checkpointing (src/persist/, docs/checkpointing.md) --------------
  void save(persist::Writer& w) const;
  void load(persist::Reader& r);

 private:
  double rho_;
  std::uint64_t unit_ = 0;
  // Observed at the arrival side.
  FlatMatrix<std::uint32_t> open_counts_;   // [from][to], current unit
  FlatMatrix<std::uint32_t> closed_counts_; // [from][to], last closed unit
  FlatMatrix<double> incoming_ewma_;        // held by `to`
  // Held at the departure side (what DV tables read).
  FlatMatrix<double> outgoing_ewma_;        // held by `from`
  FlatMatrix<double> report_count_;         // freshest token payload
  FlatMatrix<std::uint64_t> report_unit_;   // its unit + 1 (0 = none)
  FlatMatrix<std::uint64_t> report_used_;   // last unit folded + 1
  std::uint64_t tokens_accepted_ = 0;
  std::uint64_t tokens_stale_ = 0;
};

}  // namespace dtn::core
