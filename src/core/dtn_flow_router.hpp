// DTN-FLOW: the paper's inter-landmark data-flow router (§IV).
//
// Responsibilities per event:
//
//  node arrives at landmark L (on_arrival):
//   * record the transit prev->L in the bandwidth estimator and score
//     the node's previous prediction (updating its per-landmark
//     prediction accuracy, §IV-D.4);
//   * merge the distance vector the node carried from its previous
//     landmark into L's routing table (tables travel on mobile nodes,
//     §IV-C.2);
//   * update the node's order-k Markov predictor and predict its next
//     transit (§IV-B);
//   * the node uploads every packet that targets L, or whose chosen
//     next hop is L, or for which L's table promises a smaller expected
//     delay than the packet is carrying (prediction-inaccuracy rule,
//     §IV-D.1) — each uploaded packet is immediately re-dispatched;
//   * L offers its stored packets to the newcomer (most-urgent first,
//     the §IV-D.5 forwarding priority).
//
//  node departs (on_departure): snapshot L's distance vector onto the
//  node; run the dead-end check on the completed stay (§IV-E.1).
//
//  time-unit tick (on_time_unit): close the bandwidth unit, refresh
//  every landmark's direct-link delays, roll the load-balancing rate
//  monitors (§IV-E.3) and re-check parked nodes for dead ends.
//
// Routing loops are detected from the packet's station path and
// corrected by re-converging the distance vectors of the looped
// landmarks (§IV-E.2); `inject_loop` provides the experiment's fault
// injection.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/bandwidth.hpp"
#include "core/distributed_bandwidth.hpp"
#include "core/markov_predictor.hpp"
#include "core/routing_table.hpp"
#include "net/network.hpp"
#include "net/router.hpp"
#include "sim/shard_coordinator.hpp"
#include "util/annotations.hpp"
#include "util/arena.hpp"
#include "util/flat_matrix.hpp"

namespace dtn::core {

struct DtnFlowConfig {
  /// Markov predictor order k (paper: k = 1 is best on both traces).
  std::size_t predictor_order = 1;
  /// EWMA weight on the newest unit in the bandwidth update (eq. 4).
  double bandwidth_rho = 0.2;
  /// Learn outgoing link bandwidths through the faithful §IV-C.1
  /// protocol (reverse-notification tokens carried by predicted movers
  /// + O3 symmetry fallback) instead of the centralized shortcut.
  bool distributed_bandwidth = false;
  /// Routing-table exchange thinning (§IV-C.3's maintenance-cost
  /// observation: stable tables allow a lower update frequency): a node
  /// carries a distance vector only on every k-th departure.  1 = every
  /// transit (the base protocol).
  std::size_t dv_exchange_every = 1;
  /// The paper's stated future work (§VI): combine node-to-node
  /// communication with the inter-landmark flow.  When two carriers
  /// meet, a packet moves to the peer if its overall transit
  /// probability toward the packet's chosen next hop (or the peer's
  /// predicted transit straight to the destination) strictly beats the
  /// current carrier's.
  bool node_to_node_relay = false;
  /// Exploit nodes predicted to transit directly to a packet's
  /// destination (§IV-D.2).
  bool direct_delivery = true;
  /// Multiply transit probability by the node's measured prediction
  /// accuracy when ranking carriers (§IV-D.4).
  bool refine_carrier_selection = true;
  double accuracy_init = 0.5;
  double accuracy_gain = 1.1;  ///< multiplier on a correct prediction
  double accuracy_loss = 0.9;  ///< multiplier on an incorrect prediction

  // -- extensions (§IV-E) ----------------------------------------------
  bool dead_end_prevention = false;
  /// Stay-time factor theta; a stay theta x longer than the node's
  /// average (overall or at this landmark) flags a dead end.
  double dead_end_theta = 2.0;
  /// Completed stays required before dead-end detection engages
  /// (prevents false positives on cold nodes).
  std::size_t dead_end_min_records = 5;

  bool loop_correction = false;
  /// Bounded iterations of the post-detection re-convergence exchange.
  std::size_t loop_correction_rounds = 8;

  bool load_balancing = false;
  /// Link overload factor lambda: incoming rate > lambda x outgoing
  /// rate diverts to the backup next hop.
  double overload_lambda = 2.0;

  /// Packets handed to one arriving node per association
  /// (§IV-D.5's B_up); 0 = unlimited.
  std::size_t max_downloads_per_arrival = 0;

  // -- communication scheduling (§IV-D.5) -------------------------------
  /// Model the serialized landmark channel: each landmark is either in
  /// packet-uploading or packet-forwarding mode depending on the ratio
  /// of station-held packets to packets on connected nodes.
  bool scheduled_communication = false;
  /// Switch to uploading mode when station/(packets on nodes) < T_u.
  double upload_threshold = 0.5;
  /// Switch back to forwarding mode when the ratio > T_d.
  double download_threshold = 2.0;
  /// Packets a node may upload per association in uploading mode
  /// (§IV-D.5's B_up); 0 = unlimited.
  std::size_t max_uploads_per_arrival = 50;

  // -- graceful degradation under faults (docs/fault-injection.md) ------
  /// Expire routes learned from landmarks that have stayed silent for
  /// this many measurement units (their advertised rows are withdrawn,
  /// so traffic stops being steered through a dead station on ancient
  /// promises).  0 disables expiry — with no fault plan attached the
  /// replay is bit-identical either way, since nothing ever goes
  /// silent for a full unit in a healthy run only when enabled.
  double route_staleness_units = 0.0;

  /// Scheduled fault injection (Table VII): at time unit `at_unit`, pin
  /// the routing cycle `cycle` for destination `dst`.
  struct LoopInjection {
    net::LandmarkId dst = 0;
    std::vector<net::LandmarkId> cycle;
    std::size_t at_unit = 1;
  };
  std::vector<LoopInjection> loop_injections;
};

/// Extension/diagnostic counters exposed for the Table VI/VII benches.
struct DtnFlowDiagnostics {
  std::uint64_t transits_observed = 0;
  std::uint64_t predictions_scored = 0;
  std::uint64_t predictions_correct = 0;
  std::uint64_t dead_ends_detected = 0;
  std::uint64_t loops_detected = 0;
  std::uint64_t loops_corrected = 0;
  std::uint64_t balancing_diversions = 0;
  // -- resilience (nonzero only when a fault plan is attached) ----------
  std::uint64_t station_outages_seen = 0;
  std::uint64_t station_recoveries_seen = 0;
  /// Distance vectors destroyed in transit (carrier crash or injected
  /// control-plane loss).
  std::uint64_t dv_carriers_lost = 0;
  /// Distance vectors whose delivery was deferred to a later landmark
  /// by an injected propagation delay.
  std::uint64_t dv_deliveries_deferred = 0;
  /// Origins whose advertised routes were withdrawn by staleness expiry.
  std::uint64_t stale_origins_expired = 0;
  /// Dispatches that fell back to the backup next hop because the
  /// primary next hop's station was down.
  std::uint64_t fallback_next_hops = 0;
  /// First accepted distance vector at a landmark after its recovery.
  std::uint64_t post_outage_reconvergences = 0;

  friend bool operator==(const DtnFlowDiagnostics&,
                         const DtnFlowDiagnostics&) = default;
};

class DtnFlowRouter final : public net::Router {
 public:
  explicit DtnFlowRouter(DtnFlowConfig config = {});

  [[nodiscard]] std::string name() const override { return "DTN-FLOW"; }
  [[nodiscard]] bool uses_stations() const override { return true; }
  /// Every per-event write lands in shard-owned state (the landmark's
  /// table/cache, the arriving node, the (prev, l) bandwidth cell, the
  /// current shard's diagnostics/scratch slot) — except loop correction
  /// (rewrites remote landmarks' tables) and the distributed-bandwidth
  /// protocol (shared token counters), which stay serial-only.
  [[nodiscard]] bool shard_safe() const override {
    return !cfg_.loop_correction && !cfg_.distributed_bandwidth;
  }
  void prepare_shards(std::size_t num_shards) override {
    diag_slots_.assign(num_shards, DtnFlowDiagnostics{});
    scratch_slots_.assign(num_shards, {});
    ensure_arenas(num_shards);
  }

  void on_init(net::Network& net) override;
  void on_arrival(net::Network& net, net::NodeId node,
                  net::LandmarkId l) override;
  void on_departure(net::Network& net, net::NodeId node,
                    net::LandmarkId l) override;
  /// Batched contact dispatch (docs/simd-hot-path.md): prepay the
  /// present-epoch advance for a whole same-(time, l) departure batch
  /// so on_departure skips its per-node bump; serialized epoch values
  /// stay identical to unbatched replay.  The prepaid balance is always
  /// zero at event boundaries (audited).
  void on_departure_batch_begin(net::Network& net, net::LandmarkId l,
                                std::size_t count) override;
  void on_contact(net::Network& net, net::NodeId arriving,
                  net::NodeId present, net::LandmarkId l) override;
  void on_packet_generated(net::Network& net, net::PacketId pid) override;
  void on_time_unit(net::Network& net, std::size_t unit_index) override;
  void on_node_crash(net::Network& net, net::NodeId node) override;
  void on_node_reboot(net::Network& net, net::NodeId node) override;
  void on_station_outage(net::Network& net, net::LandmarkId l) override;
  void on_station_recovery(net::Network& net, net::LandmarkId l) override;

  // -- checkpointing (src/persist/, docs/checkpointing.md) --------------
  /// Serializes both estimators, every node's predictor/prediction/
  /// carried-DV/token/stay state, every landmark's routing table, rate
  /// monitors, channel mode and present epoch, the fault mirrors, the
  /// accuracy matrix and the (summed) diagnostics.  The carrier-score
  /// cache and scratch buffers are rebuilt lazily from serialized state
  /// and deliberately not stored.
  [[nodiscard]] bool checkpointable() const override { return true; }
  void checkpoint_save(persist::Writer& w) const override;
  void checkpoint_load(persist::Reader& r, net::Network& net) override;

  /// Invariant audit hook (debug tooling, see invariant_auditor.hpp):
  /// audits every node predictor (flat store + incremental argmax),
  /// every landmark routing table (dirty bookkeeping + clean columns vs
  /// from-scratch recompute) and the carrier-cache epoch discipline.
  void audit(const net::Network& net, sim::AuditReport& report) const override;

  // -- introspection (tests / benches / figures) ------------------------
  [[nodiscard]] const DtnFlowConfig& config() const { return cfg_; }
  [[nodiscard]] const BandwidthEstimator& bandwidth() const { return bw_; }
  /// Distributed estimator (only when cfg.distributed_bandwidth).
  [[nodiscard]] const DistributedBandwidth& distributed_bandwidth() const {
    DTN_ASSERT(dbw_.has_value());
    return *dbw_;
  }
  [[nodiscard]] const RoutingTable& routing_table(net::LandmarkId l) const;
  [[nodiscard]] RoutingTable& mutable_routing_table(net::LandmarkId l);
  [[nodiscard]] const MarkovPredictor& predictor(net::NodeId n) const;
  [[nodiscard]] double accuracy(net::NodeId n, net::LandmarkId l) const;
  /// Diagnostics summed over all shard slots (one slot in serial runs).
  [[nodiscard]] DtnFlowDiagnostics diagnostics() const;

  /// Fault injection for the Table VII experiment: pin a routing cycle
  /// for `dst` through `cycle` (cycle[i] -> cycle[i+1], wrapping).
  void inject_loop(net::LandmarkId dst,
                   std::span<const net::LandmarkId> cycle);

  /// Test-only fault injection for the auditor's negative tests: skew
  /// the scratch arena's incremental byte counter (the accounting-drift
  /// bug class `Arena::check` exists to catch).
  void debug_corrupt_arena_accounting_for_test() {
    DTN_ASSERT(!arena_slots_.empty());
    arena_slots_[0]->debug_corrupt_accounting_for_test();
  }

  /// Test-only fault injection: desynchronize one column of a *valid*
  /// carrier-cache entry without bumping the present epoch (the
  /// SoA-mirror bug class — a score column updated without its
  /// siblings).  Returns false when the cache entry is not currently
  /// valid (nothing to corrupt).
  bool debug_corrupt_carrier_cache_for_test(net::LandmarkId l,
                                            net::LandmarkId to);

  /// §IV-E.4 helper: the destination node's most frequently visited
  /// landmarks (up to `count`), the places to address node-bound packets
  /// to.
  [[nodiscard]] static std::vector<net::LandmarkId> frequent_landmarks(
      const net::Network& net, net::NodeId node, std::size_t count);

 private:
  struct NodeState {
    std::optional<MarkovPredictor> predictor;
    LandmarkId predicted_next = kNoLandmark;
    LandmarkId predicted_from = kNoLandmark;
    double arrived_at = 0.0;
    std::optional<DistanceVector> carried_dv;
    /// §IV-C.1 reverse-notification token picked up at departure.
    std::optional<BandwidthToken> carried_token;
    /// Departures from each landmark since this node last couriered
    /// that landmark's distance vector (§IV-C.3 exchange thinning).
    /// Per-landmark so alternating shuttles still serve both
    /// directions.
    std::vector<std::uint32_t> departures_since_dv;
    // Stay-time statistics for dead-end detection.
    std::vector<double> stay_sum;
    std::vector<std::uint32_t> stay_count;
    double total_stay = 0.0;
    std::uint32_t total_stays = 0;
  };

  /// The present nodes' cached suitability as carriers toward a given
  /// target landmark, snapshotted in present order (the scan order the
  /// deterministic-replay contract fixes).  Structure-of-arrays: each
  /// score component is one contiguous column, so the refinement sweep
  /// in carrier_scores and the dispatch scans read packed doubles
  /// instead of striding over an array of structs
  /// (docs/simd-hot-path.md).  Valid iff `epoch` matches the owning
  /// landmark's present_epoch.
  struct CarrierScores {
    std::uint64_t epoch = 0;
    /// Present nodes, in present order.
    std::vector<net::NodeId> node;
    /// Overall transit probability (raw x accuracy refinement) — the
    /// ranking key of §IV-D.3/4.
    std::vector<double> overall;
    /// Raw P(next = target | node's context), for the §IV-D.3
    /// plausibility floor.
    std::vector<double> raw;
    /// Node's predicted next landmark equals the target (§IV-D.2).
    std::vector<std::uint8_t> predicted_to;
    [[nodiscard]] std::size_t size() const { return node.size(); }
  };

  struct LandmarkState {
    std::optional<RoutingTable> table;
    // Per-neighbor packet rates for load balancing (current open unit
    // and previous closed unit).
    std::vector<double> incoming;
    std::vector<double> outgoing;
    std::vector<double> prev_incoming;
    std::vector<double> prev_outgoing;
    /// Alternation counter per overloaded link (diverts every other
    /// packet to the backup next hop).
    std::vector<std::uint32_t> divert_toggle;
    /// §IV-D.5 channel mode (meaningful when scheduled_communication):
    /// true = uplink serves node uploads, false = downlink forwards.
    bool uploading_mode = true;

    /// Present-set epoch: bumped on every arrival/departure at this
    /// landmark.  Prediction state of a *present* node only changes on
    /// its own arrival, so the epoch covers every input of the carrier
    /// scores below.
    std::uint64_t present_epoch = 1;
    /// Per-target-landmark carrier-score cache (lazy; entry valid iff
    /// its epoch matches present_epoch).  Departure-time dispatch scans
    /// reuse the scores across every packet of an association instead
    /// of re-deriving per-candidate probabilities per packet.
    std::vector<CarrierScores> carrier_cache;
  };

  /// The node's overall probability of transiting to `to` from its
  /// current landmark (transit probability, optionally x accuracy).
  [[nodiscard]] double overall_transit_probability(const net::Network& net,
                                                   net::NodeId n,
                                                   net::LandmarkId to) const;

  /// Cached carrier scores of the nodes present at `l` toward target
  /// landmark `to`, in present order; rebuilt lazily when the present
  /// set mutates (scalar gather of per-node predictor/accuracy reads,
  /// then one fused SIMD select/multiply sweep over the packed
  /// columns).  The returned reference is valid until the next arrival
  /// or departure at `l`.
  const CarrierScores& carrier_scores(const net::Network& net,
                                      net::LandmarkId l, net::LandmarkId to);

  /// The out-of-line rebuild half of carrier_scores (the epoch-hit fast
  /// path stays small enough for the dispatch scans to inline).
  const CarrierScores& rebuild_carrier_scores(const net::Network& net,
                                              LandmarkState& ls,
                                              CarrierScores& entry,
                                              net::LandmarkId l,
                                              net::LandmarkId to);

  /// Choose the next hop (and expected delay) for `dst` at landmark `l`,
  /// applying load balancing.  Returns false when unreachable.
  bool choose_next_hop(net::LandmarkId l, net::LandmarkId dst,
                       net::LandmarkId& next, double& delay);

  [[nodiscard]] bool link_overloaded(const LandmarkState& ls,
                                     net::LandmarkId neighbor) const;

  /// Try to hand one station packet to the best connected carrier.
  bool dispatch_packet(net::Network& net, net::LandmarkId l,
                       net::PacketId pid);

  /// Offer station packets to one (newly arrived) node.
  void offer_packets_to_node(net::Network& net, net::LandmarkId l,
                             net::NodeId n);

  /// Upload from node to station per the step-5 rules; returns uploaded
  /// packet ids.  `max_count` 0 = unlimited; `only_reached_hop`
  /// restricts to packets whose chosen next hop is this landmark
  /// (forwarding-mode uplink restriction, §IV-D.5).  The returned list
  /// lives in the current shard's scratch arena — valid until the
  /// enclosing top-level hook returns (util/arena.hpp lifetime rule).
  ArenaVector<net::PacketId> upload_packets(net::Network& net, net::NodeId n,
                                            net::LandmarkId l, bool force_all,
                                            std::size_t max_count = 0,
                                            bool only_reached_hop = false);

  /// Recompute the §IV-D.5 channel mode of landmark `l` with hysteresis.
  void update_channel_mode(const net::Network& net, net::LandmarkId l);

  /// Hybrid node-to-node relay (§VI future work): move `from`'s packets
  /// to `to` where `to` is the strictly better carrier.
  void relay_between_nodes(net::Network& net, net::NodeId from,
                           net::NodeId to);

 public:
  /// Current channel mode (uploading = true); only meaningful with
  /// scheduled_communication enabled.  Exposed for tests/benches.
  [[nodiscard]] bool landmark_uploading_mode(net::LandmarkId l) const;

 private:

  void note_station_ingress(net::Network& net, net::LandmarkId l,
                            net::PacketId pid);
  void check_loop(net::Network& net, net::LandmarkId l, net::PacketId pid);
  void correct_loop(net::Network& net, net::LandmarkId dst,
                    std::span<const net::LandmarkId> cycle);
  bool stay_is_dead_end(const NodeState& ns, net::LandmarkId l,
                        double stay) const;
  void check_parked_dead_end(net::Network& net, net::NodeId n);

  /// Expected link delay from whichever estimator is active.
  [[nodiscard]] double link_expected_delay(net::LandmarkId from,
                                           net::LandmarkId to) const;

  // Shard-safety annotations (util/annotations.hpp, tools/analyzer):
  // LOCAL state is partitioned by the event's landmark/node or by
  // per-shard slot, so concurrent shard hooks never contend; SHARED
  // state must not be written from shard-reachable code.  The
  // annotations are member-granular: loop correction rewriting OTHER
  // landmarks' rows inside `landmarks_` is below their resolution,
  // which is exactly why that feature stays behind the runtime
  // shard_safe() gate.
  DTN_CKPT_SKIP("pinned by the checkpoint config fingerprint")
  DtnFlowConfig cfg_;
  /// Transit counts land in the (prev, l) cell, owned by the arrival
  /// event's shard.
  DTN_SHARD_LOCAL BandwidthEstimator bw_{1, 0.5};  // re-initialized in on_init
  /// §IV-C.1 token counters are cross-landmark shared state; the
  /// feature forces shard_safe() == false (serial fallback).
  DTN_SHARD_SHARED std::optional<DistributedBandwidth> dbw_;
  DTN_SHARD_LOCAL std::vector<NodeState> nodes_;
  DTN_SHARD_LOCAL std::vector<LandmarkState> landmarks_;
  /// Mirror of the injector's station-outage set (maintained through the
  /// fault hooks; all zeros without a fault plan).  choose_next_hop has
  /// no Network access, so the fallback check reads this mirror — the
  /// audit hook cross-checks it against the injector's ground truth.
  DTN_SHARD_SHARED std::vector<std::uint8_t> station_down_;
  /// Landmarks recovered from an outage and waiting for their first
  /// accepted distance vector (re-convergence accounting).
  /// Cleared per-landmark on the first accepted DV after recovery (the
  /// event's own landmark cell); set only by the serial fault hooks.
  DTN_SHARD_LOCAL std::vector<std::uint8_t> needs_reconvergence_;
  DTN_SHARD_LOCAL FlatMatrix<double> accuracy_;
  /// Diagnostics, one slot per shard so concurrent shard loops never
  /// contend (serial runs and the shard coordinator use slot 0).
  DTN_SHARD_LOCAL std::vector<DtnFlowDiagnostics> diag_slots_{1};
  [[nodiscard]] DtnFlowDiagnostics& diag() {
    return diag_slots_[sim::current_shard()];
  }
  double time_unit_ = trace::kDay;
  /// Scratch buffers for per-node conditional distributions (reused by
  /// offer_packets_to_node; avoids a vector allocation per offer), one
  /// per shard like diag_slots_.
  DTN_SHARD_LOCAL DTN_CKPT_SKIP("per-shard scratch, rebuilt empty on resume")
  std::vector<std::vector<double>> scratch_slots_{1};
  [[nodiscard]] std::vector<double>& distribution_scratch() {
    return scratch_slots_[sim::current_shard()];
  }
  /// Per-shard scratch arenas for hook-local vector churn (offer
  /// queues, sort orders, upload lists; util/arena.hpp).  Reset at
  /// top-level hook entry; hooks never nest, so nothing outlives its
  /// hook.  unique_ptr because Arena is non-copyable/non-movable.
  DTN_SHARD_LOCAL DTN_CKPT_SKIP("per-hook scratch arenas, rewound on resume")
  std::vector<std::unique_ptr<Arena>> arena_slots_;
  [[nodiscard]] Arena& arena() {
    return *arena_slots_[sim::current_shard()];
  }
  /// Grow/shrink the arena chain to `n` slots and rewind every arena.
  void ensure_arenas(std::size_t n);
  /// Present-epoch advances prepaid by on_departure_batch_begin and
  /// consumed by on_departure, one slot per shard (a departure batch
  /// never crosses shards).  Always zero at event boundaries — audited,
  /// never serialized.
  DTN_SHARD_LOCAL DTN_CKPT_SKIP("always zero at event boundaries (audited)")
  std::vector<std::uint64_t> epoch_prepaid_{0};
};

}  // namespace dtn::core
