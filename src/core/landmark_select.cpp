#include "core/landmark_select.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace dtn::core {

double squared_distance(const trace::Point& a, const trace::Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

std::vector<std::size_t> select_landmarks(
    std::span<const CandidatePlace> candidates, double min_distance,
    std::size_t max_landmarks) {
  DTN_ASSERT(min_distance >= 0.0);
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Most-visited first; stable on ties by index for determinism.
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return candidates[a].visit_count > candidates[b].visit_count;
  });
  const double d2 = min_distance * min_distance;
  std::vector<std::size_t> selected;
  for (const std::size_t idx : order) {
    const bool clear = std::none_of(
        selected.begin(), selected.end(), [&](std::size_t s) {
          return squared_distance(candidates[idx].position,
                                  candidates[s].position) < d2;
        });
    if (!clear) continue;
    selected.push_back(idx);
    if (max_landmarks != 0 && selected.size() == max_landmarks) break;
  }
  return selected;
}

std::vector<trace::LandmarkId> assign_subareas(
    std::span<const trace::Point> points,
    std::span<const trace::Point> landmark_positions) {
  DTN_ASSERT(!landmark_positions.empty());
  std::vector<trace::LandmarkId> assignment;
  assignment.reserve(points.size());
  for (const auto& p : points) {
    trace::LandmarkId best = 0;
    double best_d2 = squared_distance(p, landmark_positions[0]);
    for (std::size_t l = 1; l < landmark_positions.size(); ++l) {
      const double d2 = squared_distance(p, landmark_positions[l]);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = static_cast<trace::LandmarkId>(l);
      }
    }
    assignment.push_back(best);
  }
  return assignment;
}

}  // namespace dtn::core
