#include "core/bandwidth.hpp"

#include "persist/flat_io.hpp"
#include "persist/serializer.hpp"
#include "util/assert.hpp"

namespace dtn::core {

BandwidthEstimator::BandwidthEstimator(std::size_t num_landmarks, double rho)
    : rho_(rho),
      counts_(num_landmarks, num_landmarks, 0),
      ewma_(num_landmarks, num_landmarks, 0.0) {
  DTN_ASSERT(rho_ > 0.0 && rho_ <= 1.0);
}

void BandwidthEstimator::record_transit(trace::LandmarkId from,
                                        trace::LandmarkId to) {
  DTN_ASSERT(from != to);
  ++counts_.at(from, to);
}

void BandwidthEstimator::close_unit() {
  for (std::size_t i = 0; i < ewma_.rows(); ++i) {
    for (std::size_t j = 0; j < ewma_.cols(); ++j) {
      double& b = ewma_.at(i, j);
      b = rho_ * static_cast<double>(counts_.at(i, j)) + (1.0 - rho_) * b;
    }
  }
  counts_.fill(0);
  ++units_closed_;
}

double BandwidthEstimator::bandwidth(trace::LandmarkId from,
                                     trace::LandmarkId to) const {
  return ewma_.at(from, to);
}

double BandwidthEstimator::expected_delay(trace::LandmarkId from,
                                          trace::LandmarkId to,
                                          double time_unit_seconds) const {
  DTN_ASSERT(time_unit_seconds > 0.0);
  const double b = ewma_.at(from, to);
  if (b <= 0.0) return infinite_delay();
  return time_unit_seconds / b;
}

std::vector<trace::LandmarkId> BandwidthEstimator::neighbors(
    trace::LandmarkId from) const {
  std::vector<trace::LandmarkId> out;
  for (std::size_t j = 0; j < ewma_.cols(); ++j) {
    if (j == from) continue;
    if (ewma_.at(from, j) > 0.0) {
      out.push_back(static_cast<trace::LandmarkId>(j));
    }
  }
  return out;
}

std::uint32_t BandwidthEstimator::open_unit_count(trace::LandmarkId from,
                                                  trace::LandmarkId to) const {
  return counts_.at(from, to);
}

void BandwidthEstimator::save(persist::Writer& w) const {
  w.f64(rho_);
  persist::write_matrix(w, counts_);
  persist::write_matrix(w, ewma_);
  w.u64(units_closed_);
}

void BandwidthEstimator::load(persist::Reader& r) {
  const std::size_t n = ewma_.rows();
  rho_ = r.f64();
  persist::read_matrix(r, counts_);
  persist::read_matrix(r, ewma_);
  if (counts_.rows() != n || counts_.cols() != n || ewma_.rows() != n ||
      ewma_.cols() != n) {
    throw persist::FormatError(
        "checkpoint bandwidth estimator shape mismatch");
  }
  units_closed_ = static_cast<std::size_t>(r.u64());
}

}  // namespace dtn::core
