#include "core/distributed_bandwidth.hpp"

#include <limits>

#include "persist/flat_io.hpp"
#include "persist/serializer.hpp"
#include "util/assert.hpp"

namespace dtn::core {

DistributedBandwidth::DistributedBandwidth(std::size_t num_landmarks,
                                           double rho)
    : rho_(rho),
      open_counts_(num_landmarks, num_landmarks, 0),
      closed_counts_(num_landmarks, num_landmarks, 0),
      incoming_ewma_(num_landmarks, num_landmarks, 0.0),
      outgoing_ewma_(num_landmarks, num_landmarks, 0.0),
      report_count_(num_landmarks, num_landmarks, 0.0),
      report_unit_(num_landmarks, num_landmarks, 0),
      report_used_(num_landmarks, num_landmarks, 0) {
  DTN_ASSERT(rho_ > 0.0 && rho_ <= 1.0);
}

void DistributedBandwidth::record_arrival(trace::LandmarkId from,
                                          trace::LandmarkId to) {
  DTN_ASSERT(from != to);
  ++open_counts_.at(from, to);
}

std::optional<BandwidthToken> DistributedBandwidth::issue_token(
    trace::LandmarkId at, trace::LandmarkId predicted) const {
  DTN_ASSERT(at < open_counts_.rows());
  if (predicted >= open_counts_.rows() || predicted == at) return std::nullopt;
  if (unit_ == 0) return std::nullopt;  // nothing closed to report yet
  BandwidthToken token;
  token.link_from = predicted;  // the node heads predicted-ward: report
  token.link_to = at;           // the link predicted -> at, measured here
  token.count = static_cast<double>(closed_counts_.at(predicted, at));
  token.unit = unit_;  // sequence of the last closed unit
  return token;
}

bool DistributedBandwidth::deliver_token(trace::LandmarkId at,
                                         const BandwidthToken& token) {
  if (token.link_from != at) return false;  // mispredicted carrier: discard
  std::uint64_t& last = report_unit_.at(token.link_from, token.link_to);
  if (token.unit + 1 <= last) {
    ++tokens_stale_;
    return false;
  }
  last = token.unit + 1;
  report_count_.at(token.link_from, token.link_to) = token.count;
  ++tokens_accepted_;
  return true;
}

void DistributedBandwidth::close_unit() {
  const std::size_t n = open_counts_.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double observed = static_cast<double>(open_counts_.at(i, j));
      // Incoming side (held by j): direct observation.
      double& in = incoming_ewma_.at(i, j);
      in = rho_ * observed + (1.0 - rho_) * in;
      // Outgoing side (held by i): freshest unused token report, else
      // the O3 symmetry fallback n(j -> i) that i observed itself.
      double sample;
      if (report_unit_.at(i, j) > report_used_.at(i, j)) {
        sample = report_count_.at(i, j);
        report_used_.at(i, j) = report_unit_.at(i, j);
      } else {
        sample = static_cast<double>(open_counts_.at(j, i));
      }
      double& out = outgoing_ewma_.at(i, j);
      out = rho_ * sample + (1.0 - rho_) * out;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      closed_counts_.at(i, j) = open_counts_.at(i, j);
    }
  }
  open_counts_.fill(0);
  ++unit_;
}

double DistributedBandwidth::outgoing_bandwidth(trace::LandmarkId from,
                                                trace::LandmarkId to) const {
  return outgoing_ewma_.at(from, to);
}

double DistributedBandwidth::incoming_bandwidth(trace::LandmarkId from,
                                                trace::LandmarkId to) const {
  return incoming_ewma_.at(from, to);
}

double DistributedBandwidth::expected_delay(trace::LandmarkId from,
                                            trace::LandmarkId to,
                                            double time_unit_seconds) const {
  DTN_ASSERT(time_unit_seconds > 0.0);
  const double b = outgoing_ewma_.at(from, to);
  if (b <= 0.0) return std::numeric_limits<double>::infinity();
  return time_unit_seconds / b;
}

std::vector<trace::LandmarkId> DistributedBandwidth::neighbors(
    trace::LandmarkId from) const {
  std::vector<trace::LandmarkId> out;
  for (std::size_t j = 0; j < outgoing_ewma_.cols(); ++j) {
    if (j == from) continue;
    if (outgoing_ewma_.at(from, j) > 0.0) {
      out.push_back(static_cast<trace::LandmarkId>(j));
    }
  }
  return out;
}

void DistributedBandwidth::save(persist::Writer& w) const {
  w.f64(rho_);
  w.u64(unit_);
  persist::write_matrix(w, open_counts_);
  persist::write_matrix(w, closed_counts_);
  persist::write_matrix(w, incoming_ewma_);
  persist::write_matrix(w, outgoing_ewma_);
  persist::write_matrix(w, report_count_);
  persist::write_matrix(w, report_unit_);
  persist::write_matrix(w, report_used_);
  w.u64(tokens_accepted_);
  w.u64(tokens_stale_);
}

void DistributedBandwidth::load(persist::Reader& r) {
  const std::size_t n = incoming_ewma_.rows();
  rho_ = r.f64();
  unit_ = r.u64();
  persist::read_matrix(r, open_counts_);
  persist::read_matrix(r, closed_counts_);
  persist::read_matrix(r, incoming_ewma_);
  persist::read_matrix(r, outgoing_ewma_);
  persist::read_matrix(r, report_count_);
  persist::read_matrix(r, report_unit_);
  persist::read_matrix(r, report_used_);
  if (open_counts_.rows() != n || report_used_.cols() != n) {
    throw persist::FormatError(
        "checkpoint distributed bandwidth shape mismatch");
  }
  tokens_accepted_ = r.u64();
  tokens_stale_ = r.u64();
}

}  // namespace dtn::core
