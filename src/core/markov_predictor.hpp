// Order-k Markov predictor over landmark visiting sequences (§IV-B).
//
// A node's movement is the sequence of landmarks it visits,
// L = l(1) l(2) ... (consecutive duplicates collapse — revisiting the
// same landmark is not a transit).  The order-k predictor estimates
//
//   P(next = l | context c) = N(c . l) / N(c)            (eqs. 1-3)
//
// where c is the last k landmarks and N counts occurrences of the
// subsequence in the history so far.  `predict()` returns the argmax;
// when the context has never been seen there is no prediction, which is
// how the paper's accuracy metric treats it (predictions / correct
// predictions are only counted when a prediction is made).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"

namespace dtn::core {

using trace::LandmarkId;
using trace::kNoLandmark;

class MarkovPredictor {
 public:
  /// `order` in [1, 3] (the paper evaluates k = 1..3); `num_landmarks`
  /// bounds the id space so contexts pack into 64 bits.
  MarkovPredictor(std::size_t num_landmarks, std::size_t order);

  /// Record the next visited landmark.  Consecutive duplicates are
  /// ignored (same-landmark re-association is not a transit).
  void record_visit(LandmarkId l);

  [[nodiscard]] std::size_t order() const { return order_; }
  [[nodiscard]] std::size_t num_landmarks() const { return num_landmarks_; }
  /// Length of the collapsed visiting sequence so far.
  [[nodiscard]] std::size_t history_length() const { return history_len_; }

  /// True when the current context has been seen before (a prediction
  /// can be made).
  [[nodiscard]] bool can_predict() const;

  /// Most probable next landmark, or kNoLandmark when no prediction can
  /// be made.  Ties break toward the smaller landmark id (determinism).
  [[nodiscard]] LandmarkId predict() const;

  /// P(next = l | current context); 0 when no prediction can be made.
  [[nodiscard]] double probability_of(LandmarkId l) const;

  /// Full conditional distribution over landmarks (all zeros when the
  /// context is unseen).
  [[nodiscard]] std::vector<double> next_distribution() const;

  /// The landmark of the most recent visit (kNoLandmark before any).
  [[nodiscard]] LandmarkId current() const;

 private:
  /// Pack the last `n` context landmarks (n <= order) plus a length tag
  /// into a 64-bit key.
  [[nodiscard]] std::uint64_t context_key() const;
  [[nodiscard]] std::uint64_t extended_key(LandmarkId next) const;

  std::size_t num_landmarks_;
  std::size_t order_;
  std::size_t history_len_ = 0;
  /// Last `order` landmarks, oldest first.
  std::vector<LandmarkId> context_;
  /// N(c): occurrences of each k-context.
  std::unordered_map<std::uint64_t, std::uint32_t> context_counts_;
  /// N(c . l): occurrences of each (k+1)-gram.
  std::unordered_map<std::uint64_t, std::uint32_t> gram_counts_;
  /// Successors observed per context (for argmax/distribution without
  /// scanning all landmarks).
  std::unordered_map<std::uint64_t, std::vector<LandmarkId>> successors_;
};

/// Measured per-node prediction accuracy over a visiting sequence:
/// feeds each visit in turn, comparing the predictor's output with the
/// realized next landmark.  Returns (correct, predicted) counts —
/// the paper's Fig. 6 accuracy is correct/predicted.
struct PredictionScore {
  std::size_t correct = 0;
  std::size_t predictions = 0;
  [[nodiscard]] double accuracy() const {
    return predictions == 0 ? 0.0
                            : static_cast<double>(correct) /
                                  static_cast<double>(predictions);
  }
};

[[nodiscard]] PredictionScore score_sequence(
    std::size_t num_landmarks, std::size_t order,
    const std::vector<LandmarkId>& sequence);

/// Collapse a node's visit records into its landmark visiting sequence.
[[nodiscard]] std::vector<LandmarkId> visiting_sequence(
    std::span<const trace::Visit> visits);

}  // namespace dtn::core
