// Order-k Markov predictor over landmark visiting sequences (§IV-B).
//
// A node's movement is the sequence of landmarks it visits,
// L = l(1) l(2) ... (consecutive duplicates collapse — revisiting the
// same landmark is not a transit).  The order-k predictor estimates
//
//   P(next = l | context c) = N(c . l) / N(c)            (eqs. 1-3)
//
// where c is the last k landmarks and N counts occurrences of the
// subsequence in the history so far.  `predict()` returns the argmax;
// when the context has never been seen there is no prediction, which is
// how the paper's accuracy metric treats it (predictions / correct
// predictions are only counted when a prediction is made).
//
// Storage is a flat per-context transition store (docs/routing-hot-path.md):
// packed context keys are interned to dense ids the moment a context
// forms, each context owns a contiguous array of successor counts plus
// an incrementally maintained argmax, and a dense successor index of
// the *current* context is refreshed on `record_visit`.  The query
// path — `predict()`, `probability_of()`, `next_distribution()` —
// therefore performs only array reads: the single hash lookup left in
// the class sits on the update path (context interning), never on a
// query.  Keys are exact (20 bits per landmark id, order <= 3), so
// distinct (context, successor) pairs can never alias.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"
#include "util/annotations.hpp"
#include "util/assert.hpp"

namespace dtn::sim {
class AuditReport;
}

namespace dtn::persist {
class Writer;
class Reader;
}  // namespace dtn::persist

namespace dtn::core {

using trace::LandmarkId;
using trace::kNoLandmark;

class MarkovPredictor {
 public:
  /// `order` in [1, 3] (the paper evaluates k = 1..3); `num_landmarks`
  /// bounds the id space so contexts pack into 64 bits.
  MarkovPredictor(std::size_t num_landmarks, std::size_t order);

  /// Record the next visited landmark.  Consecutive duplicates are
  /// ignored (same-landmark re-association is not a transit).
  void record_visit(LandmarkId l);

  [[nodiscard]] std::size_t order() const { return order_; }
  [[nodiscard]] std::size_t num_landmarks() const { return num_landmarks_; }
  /// Length of the collapsed visiting sequence so far.
  [[nodiscard]] std::size_t history_length() const { return history_len_; }

  // The four query entry points below are defined in-class: the replay
  // hot loop calls them once per (carrier, destination) pair, so the
  // call itself must inline down to a handful of array reads
  // (docs/simd-hot-path.md).

  /// True when the current context has been seen before (a prediction
  /// can be made).
  [[nodiscard]] bool can_predict() const {
    return context_.size() == order_ && current_ctx_ != kNoContext &&
           !successors_[current_ctx_].empty();
  }

  /// Most probable next landmark, or kNoLandmark when no prediction can
  /// be made.  Ties break toward the smaller landmark id (determinism).
  /// (`current_ctx_ == kNoContext` iff the context has never been full —
  /// one sentinel load instead of recomputing the context length.)
  [[nodiscard]] LandmarkId predict() const {
    if (current_ctx_ == kNoContext) return kNoLandmark;
    return best_successor_[current_ctx_];  // kNoLandmark until a successor
  }

  /// P(next = l | current context); 0 when no prediction can be made.
  [[nodiscard]] double probability_of(LandmarkId l) const {
    DTN_ASSERT(l < num_landmarks_);
    // Sentinel guard first: before any full context stamp_ is still 0
    // and would spuriously match the zero-initialized stamp array.
    if (current_ctx_ == kNoContext) return 0.0;
    if (successor_stamp_[l] != stamp_) return 0.0;  // l never followed c
    const SuccRow& succ = successors_[current_ctx_];
    return static_cast<double>(succ.count[successor_pos_[l]]) /
           static_cast<double>(context_count_[current_ctx_]);
  }

  /// Full conditional distribution over landmarks (all zeros when the
  /// context is unseen), written into `out` (resized to num_landmarks).
  /// Allocation-free once `out` has capacity — the router reuses one
  /// scratch buffer across calls.
  void next_distribution(std::vector<double>& out) const;

  /// Allocating convenience overload of the above.  TEST-ONLY: replay
  /// code must use the scratch-buffer overload (the determinism lint
  /// rejects this spelling outside tests/ — see
  /// scripts/determinism_lint.py).
  [[nodiscard]] std::vector<double> next_distribution() const;

  /// The landmark of the most recent visit (kNoLandmark before any).
  [[nodiscard]] LandmarkId current() const {
    return context_.empty() ? kNoLandmark : context_.back();
  }

  // -- checkpointing (src/persist/, docs/checkpointing.md) --------------
  /// Serialize the full flat store and query cache.  The hash map is
  /// *not* written (iterating it would be order-nondeterministic, see
  /// scripts/determinism_lint.py); the dense id -> packed key vector
  /// `context_keys_` carries the same information in insertion order.
  void save(persist::Writer& w) const;
  /// Restore into a predictor constructed with the same (num_landmarks,
  /// order); the hash map is rebuilt from the key vector.  Throws
  /// persist::FormatError on shape mismatches.
  void load(persist::Reader& r);

  // -- invariant auditing (debug tooling, see invariant_auditor.hpp) ----
  /// Re-derive every incrementally maintained structure from the flat
  /// store and compare: per-context argmax (count + smaller-id
  /// tie-break) vs best_successor_/best_count_, successor-row count
  /// sums vs N(c), row uniqueness, and the stamped dense index of the
  /// current context (both directions).
  void audit(sim::AuditReport& report) const;

  /// Test-only fault injection for the auditor's negative tests: skew
  /// the cached argmax of the first context that has successors (the
  /// bug class this simulates is a missed incremental argmax update).
  /// Returns false when no context has a successor yet.
  bool debug_corrupt_argmax_for_test();

 private:
  /// Successors observed after some context, with their (k+1)-gram
  /// counts N(c . l), in first-observation order.  Structure-of-arrays:
  /// the count column is contiguous so `next_distribution` can sweep it
  /// with SIMD (docs/simd-hot-path.md); checkpoints still serialize the
  /// row interleaved (landmark, count) pairwise, so the byte layout is
  /// unchanged from the array-of-structs era.
  struct SuccRow {
    std::vector<LandmarkId> landmark;
    std::vector<std::uint32_t> count;
    [[nodiscard]] std::size_t size() const { return landmark.size(); }
    [[nodiscard]] bool empty() const { return landmark.empty(); }
  };

  static constexpr std::uint32_t kNoContext = 0xffffffffu;

  /// Exact packed key of the current (full, length == order) context:
  /// 20 bits per landmark id, most recent in the low bits.  Injective
  /// for order <= 3 and ids < 2^20, so no two contexts share a key.
  [[nodiscard]] std::uint64_t context_key() const;

  /// Dense id for `key`, allocating flat-store rows on first sight.
  std::uint32_t intern_context(std::uint64_t key);

  /// Double the probe table and reinsert every key from the dense
  /// context_keys_ mirror.
  void probe_rehash(std::size_t capacity);

  /// Make `ctx` the current context: refresh the dense successor index
  /// used by the O(1) query path.
  void switch_context(std::uint32_t ctx);

  std::size_t num_landmarks_;
  std::size_t order_;
  std::size_t history_len_ = 0;
  /// Last `order` landmarks, oldest first.
  std::vector<LandmarkId> context_;

  // -- flat per-context transition store --------------------------------
  /// Packed context key -> dense context id: open-addressing
  /// linear-probe table (power-of-two capacity, all-ones empty
  /// sentinel — valid keys fit in 60 bits, 3 x 20-bit slots).  A flat
  /// table keeps the once-per-transit intern at ~one cache line
  /// instead of std::unordered_map's bucket chase.  Never serialized
  /// and never iterated (slot order is capacity-dependent);
  /// context_keys_ below mirrors the same information in the
  /// deterministic insertion order.  Touched only by `record_visit`
  /// (update path); queries never hash.
  DTN_CKPT_SKIP("probe table derived from context_keys_; load rebuilds it")
  std::vector<std::uint64_t> probe_keys_;
  DTN_CKPT_SKIP("probe table derived from context_keys_; load rebuilds it")
  std::vector<std::uint32_t> probe_ids_;
  /// Dense context id -> packed key (insertion order).  The
  /// deterministic mirror of the probe table, used by checkpointing.
  std::vector<std::uint64_t> context_keys_;
  /// N(c) per context id.
  std::vector<std::uint32_t> context_count_;
  /// Successor-count rows per context id (contiguous, first-seen order).
  std::vector<SuccRow> successors_;
  /// Incrementally maintained argmax per context id: the most frequent
  /// successor (ties toward the smaller landmark id) and its count.
  std::vector<LandmarkId> best_successor_;
  std::vector<std::uint32_t> best_count_;

  // -- current-context query cache --------------------------------------
  /// Dense id of the current context (kNoContext until one forms).
  std::uint32_t current_ctx_ = kNoContext;
  /// `successor_pos_[l]` is l's index in the current context's successor
  /// row, valid iff `successor_stamp_[l] == stamp_` (stamps avoid
  /// clearing the dense index on every context switch).
  std::uint64_t stamp_ = 0;
  std::vector<std::uint32_t> successor_pos_;
  std::vector<std::uint64_t> successor_stamp_;
};

/// Measured per-node prediction accuracy over a visiting sequence:
/// feeds each visit in turn, comparing the predictor's output with the
/// realized next landmark.  Returns (correct, predicted) counts —
/// the paper's Fig. 6 accuracy is correct/predicted.
struct PredictionScore {
  std::size_t correct = 0;
  std::size_t predictions = 0;
  [[nodiscard]] double accuracy() const {
    return predictions == 0 ? 0.0
                            : static_cast<double>(correct) /
                                  static_cast<double>(predictions);
  }
};

[[nodiscard]] PredictionScore score_sequence(
    std::size_t num_landmarks, std::size_t order,
    const std::vector<LandmarkId>& sequence);

/// Collapse a node's visit records into its landmark visiting sequence.
[[nodiscard]] std::vector<LandmarkId> visiting_sequence(
    std::span<const trace::Visit> visits);

}  // namespace dtn::core
