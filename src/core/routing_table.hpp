// Distance-vector routing tables on landmarks (§IV-C.2, Table IV/V).
//
// Each landmark keeps, per destination landmark, the next-hop landmark
// minimizing the expected overall delay, plus the *backup* next hop
// (second-lowest delay through a different neighbor, §IV-E.3) used by
// load balancing.  The table is driven by two inputs:
//
//  * direct-link expected delays from the bandwidth estimator
//    (refreshed every measurement unit), and
//  * distance vectors received from neighbor landmarks, carried by
//    mobile nodes.  Each vector carries a sequence number; stale
//    vectors (not newer than the last merged from that origin) are
//    discarded, exactly as §IV-C.1 discards out-of-date tokens.
//
// Routes are recomputed lazily as min over neighbors of
// link_delay(self->v) + advertised_v(dst), and *incrementally*: a
// merge marks only the destination columns whose advertised delay
// actually changed, and the next query recomputes just those rows
// instead of the whole O(n^2) table (docs/routing-hot-path.md).  Link
// updates invalidate everything (a changed link can flip any route).
//
// `pin` force-overrides the next hop of one destination until `unpin`;
// this is the controlled fault-injection hook used by the routing-loop
// experiment (Table VII) to model the paper's "untimely routing table
// update" without racing the repair against the periodic exchange.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "trace/trace.hpp"
#include "util/annotations.hpp"
#include "util/flat_matrix.hpp"

namespace dtn::sim {
class AuditReport;
}

namespace dtn::persist {
class Writer;
class Reader;
}  // namespace dtn::persist

namespace dtn::core {

using trace::LandmarkId;
using trace::kNoLandmark;

inline constexpr double kInfiniteDelay = std::numeric_limits<double>::infinity();

/// The vector a landmark advertises to its neighbors: its own best
/// expected delay to every destination.
struct DistanceVector {
  LandmarkId origin = kNoLandmark;
  std::uint64_t seq = 0;
  std::vector<double> delay;  // per destination; delay[origin] == 0

  [[nodiscard]] std::size_t entries() const { return delay.size(); }
};

struct Route {
  LandmarkId next = kNoLandmark;
  double delay = kInfiniteDelay;
  LandmarkId backup_next = kNoLandmark;
  double backup_delay = kInfiniteDelay;

  [[nodiscard]] bool reachable() const { return next != kNoLandmark; }
};

class RoutingTable {
 public:
  RoutingTable(LandmarkId self, std::size_t num_landmarks);

  [[nodiscard]] LandmarkId self() const { return self_; }
  [[nodiscard]] std::size_t num_landmarks() const { return link_delay_.size(); }

  /// Update the expected delay of the direct link self -> neighbor
  /// (kInfiniteDelay removes the link).
  void set_link_delay(LandmarkId neighbor, double delay);
  [[nodiscard]] double link_delay(LandmarkId neighbor) const;

  /// Merge a neighbor's advertised vector; returns false when the
  /// vector is stale (or self-originated) and was discarded.  `now`
  /// stamps the origin's row for the staleness expiry below (callers
  /// without a clock pass the default and never expire anything).
  bool merge(const DistanceVector& dv, double now = 0.0);

  // -- graceful degradation under faults (docs/fault-injection.md) ------
  /// Withdraw every route advertised by origins whose last merged
  /// vector is older than `cutoff`: their whole advertised row (the
  /// origin's own delay-0 diagonal included) goes to infinity, so
  /// routes *to* and *through* a silent — possibly dead — landmark
  /// expire instead of being trusted forever.  Origins that never
  /// advertised keep their bootstrap diagonal (direct links stay
  /// usable before the first exchange).  A later fresh vector from the
  /// origin restores it.  Returns how many origins were expired.
  std::size_t expire_stale(double cutoff);
  [[nodiscard]] bool origin_expired(LandmarkId origin) const;
  /// Time of the last accepted vector from `origin` (0 before any).
  [[nodiscard]] double advertised_time(LandmarkId origin) const;

  /// Best/backup route toward `dst` (self -> {self, 0}).
  [[nodiscard]] Route route(LandmarkId dst) const;
  [[nodiscard]] double delay_to(LandmarkId dst) const;

  /// Produce the vector to advertise; each call increments the sequence
  /// number (one snapshot per carrying node).
  [[nodiscard]] DistanceVector snapshot();

  /// Fraction of other landmarks with a finite-delay route (Fig. 8
  /// coverage metric).
  [[nodiscard]] double coverage() const;

  /// Current next hop per destination (kNoLandmark when unreachable);
  /// the Fig. 8 stability metric diffs successive calls.
  [[nodiscard]] std::vector<LandmarkId> next_hops() const;

  // -- fault injection for the loop experiment -------------------------
  void pin(LandmarkId dst, LandmarkId next, double fake_delay);
  void unpin(LandmarkId dst);
  [[nodiscard]] bool is_pinned(LandmarkId dst) const;

  // -- checkpointing (src/persist/, docs/checkpointing.md) --------------
  /// Serialize everything, *including* the mutable dirty/route cache and
  /// the advertised-time bookkeeping: the cached routes are a pure
  /// function of advertised_ + link_delay_ + pins, but writing them
  /// verbatim makes restore-then-reserialize byte-identical (the
  /// invariant the auditor's CRC check leans on).
  void save(persist::Writer& w) const;
  /// Restore into a table constructed with the same (self,
  /// num_landmarks).  Throws persist::FormatError on shape mismatches.
  void load(persist::Reader& r);

  // -- invariant auditing (debug tooling, see invariant_auditor.hpp) ----
  /// Validate the dirty-column bookkeeping (flag array vs compact list)
  /// and recompute every *clean* column from scratch, comparing the
  /// cached route bit-for-bit — a clean column that disagrees with the
  /// full min-over-neighbors scan means a merge/link update forgot to
  /// mark it dirty.
  void audit(sim::AuditReport& report) const;

  /// Test-only fault injection for the auditor's negative tests: change
  /// an advertised delay *without* marking the destination column dirty
  /// (the exact bug class the incremental recompute invites).  Keeps the
  /// transposed mirror in sync — the mirror is not the bug under test.
  void debug_corrupt_advertised_for_test(LandmarkId origin, LandmarkId dst,
                                         double delay);

  /// Test-only fault injection: desynchronize one cell of the transposed
  /// advertised mirror (the SoA-mirror bug class — a merge path that
  /// forgot to update the transpose).  The auditor must catch it.
  void debug_corrupt_transposed_for_test(LandmarkId origin, LandmarkId dst,
                                         double delay);

 private:
  /// Bring every dirty destination column up to date (no-op when clean).
  void recompute() const;
  /// The full min-over-neighbors scan for one destination (pins
  /// applied); dispatches to the SIMD two-pass sweep or the scalar
  /// reference loop — both produce bit-identical Routes
  /// (docs/simd-hot-path.md).
  [[nodiscard]] Route compute_column(LandmarkId dst) const;
  /// The scalar reference scan (the pre-SIMD running best/backup loop).
  /// The auditor always compares against this, so a SIMD divergence in
  /// the cached routes is caught as a clean-column mismatch.
  [[nodiscard]] Route compute_column_scalar(LandmarkId dst) const;
  /// Rebuild advertised_T_ from advertised_ (construction and load).
  void rebuild_transposed();
  /// Recompute the route toward one destination into routes_.
  void recompute_column(LandmarkId dst) const;
  /// Mark one destination column stale.
  void mark_dirty(LandmarkId dst);
  /// Mark every column stale (link-delay changes can flip any route).
  void mark_all_dirty();

  LandmarkId self_;
  std::vector<double> link_delay_;
  FlatMatrix<double> advertised_;        // [origin][dst]
  /// Transposed mirror of advertised_ ([dst][origin]) so the per-column
  /// min scan reads one contiguous row.  Derived state: never
  /// serialized (checkpoint byte layout is unchanged), rebuilt on load,
  /// updated cell-for-cell by merge/expire_stale, audited against
  /// advertised_ bit-for-bit.
  DTN_CKPT_SKIP("transposed mirror of advertised_; load rebuilds it")
  FlatMatrix<double> advertised_T_;      // [dst][origin]
  std::vector<std::uint64_t> last_seq_;  // last merged seq + 1 per origin
  std::vector<double> advertised_time_;  // when each origin last advertised
  std::vector<std::uint8_t> expired_;    // origins withdrawn by expire_stale
  std::vector<std::uint8_t> pinned_;
  std::vector<Route> pin_route_;
  std::uint64_t seq_ = 0;

  mutable std::vector<Route> routes_;
  /// Incremental-recompute bookkeeping: the set of stale destination
  /// columns (dense flag per column + compact list for iteration).
  /// `all_dirty_` short-circuits the list after link updates.
  mutable std::vector<std::uint8_t> column_dirty_;
  mutable std::vector<LandmarkId> dirty_columns_;
  mutable bool all_dirty_ = true;
  mutable bool dirty_ = true;
};

}  // namespace dtn::core
