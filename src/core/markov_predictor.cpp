#include "core/markov_predictor.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dtn::core {

namespace {
// 20 bits per landmark id allows 3 context slots + length tag in 64 bits.
constexpr std::uint64_t kSlotBits = 20;
constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;
}  // namespace

MarkovPredictor::MarkovPredictor(std::size_t num_landmarks, std::size_t order)
    : num_landmarks_(num_landmarks), order_(order) {
  DTN_ASSERT(order_ >= 1 && order_ <= 3);
  DTN_ASSERT(num_landmarks_ > 0 && num_landmarks_ < (1ULL << kSlotBits));
}

std::uint64_t MarkovPredictor::context_key() const {
  // Key = [len tag | l_{-k} ... l_{-1}]; the tag distinguishes short
  // histories (fewer than `order` landmarks seen yet) from real contexts.
  std::uint64_t key = static_cast<std::uint64_t>(context_.size()) << 62;
  for (const LandmarkId l : context_) {
    key = (key << kSlotBits) | (static_cast<std::uint64_t>(l) & kSlotMask);
  }
  return key;
}

std::uint64_t MarkovPredictor::extended_key(LandmarkId next) const {
  // (k+1)-gram key: context key mixed with the successor in the low bits
  // of a second multiplier — avoid collisions by hashing pairwise.
  const std::uint64_t c = context_key();
  return c * 0x9e3779b97f4a7c15ULL ^ (static_cast<std::uint64_t>(next) + 1);
}

void MarkovPredictor::record_visit(LandmarkId l) {
  DTN_ASSERT(l < num_landmarks_);
  if (!context_.empty() && context_.back() == l) return;  // not a transit
  if (context_.size() == order_) {
    // A full context precedes l: count the (k+1)-gram c.l.
    ++gram_counts_[extended_key(l)];
    auto& succ = successors_[context_key()];
    if (std::find(succ.begin(), succ.end(), l) == succ.end()) {
      succ.push_back(l);
    }
  }
  context_.push_back(l);
  if (context_.size() > order_) context_.erase(context_.begin());
  ++history_len_;
  // Count the context as a substring occurrence the moment it forms —
  // eqs. (2)-(3) count *all* occurrences of the k-subsequence in L,
  // including the trailing one (so conditional probabilities over a
  // just-formed context sum to (N(c)-1)/N(c), as in the Song et al.
  // predictor the paper adopts).
  if (context_.size() == order_) {
    ++context_counts_[context_key()];
  }
}

LandmarkId MarkovPredictor::current() const {
  return context_.empty() ? kNoLandmark : context_.back();
}

bool MarkovPredictor::can_predict() const {
  if (context_.size() < order_) return false;
  const auto it = successors_.find(context_key());
  return it != successors_.end() && !it->second.empty();
}

LandmarkId MarkovPredictor::predict() const {
  if (context_.size() < order_) return kNoLandmark;
  const auto it = successors_.find(context_key());
  if (it == successors_.end()) return kNoLandmark;
  LandmarkId best = kNoLandmark;
  std::uint32_t best_count = 0;
  for (const LandmarkId l : it->second) {
    const auto g = gram_counts_.find(extended_key(l));
    DTN_ASSERT(g != gram_counts_.end());
    if (g->second > best_count ||
        (g->second == best_count && best != kNoLandmark && l < best)) {
      best_count = g->second;
      best = l;
    }
  }
  return best;
}

double MarkovPredictor::probability_of(LandmarkId l) const {
  DTN_ASSERT(l < num_landmarks_);
  if (context_.size() < order_) return 0.0;
  const auto c = context_counts_.find(context_key());
  if (c == context_counts_.end() || c->second == 0) return 0.0;
  const auto g = gram_counts_.find(extended_key(l));
  if (g == gram_counts_.end()) return 0.0;
  return static_cast<double>(g->second) / static_cast<double>(c->second);
}

std::vector<double> MarkovPredictor::next_distribution() const {
  std::vector<double> dist(num_landmarks_, 0.0);
  if (context_.size() < order_) return dist;
  const auto it = successors_.find(context_key());
  if (it == successors_.end()) return dist;
  const auto c = context_counts_.find(context_key());
  DTN_ASSERT(c != context_counts_.end());
  for (const LandmarkId l : it->second) {
    const auto g = gram_counts_.find(extended_key(l));
    dist[l] = static_cast<double>(g->second) / static_cast<double>(c->second);
  }
  return dist;
}

PredictionScore score_sequence(std::size_t num_landmarks, std::size_t order,
                               const std::vector<LandmarkId>& sequence) {
  MarkovPredictor predictor(num_landmarks, order);
  PredictionScore score;
  for (const LandmarkId l : sequence) {
    if (predictor.current() == l) continue;
    const LandmarkId guess = predictor.predict();
    if (guess != kNoLandmark) {
      ++score.predictions;
      if (guess == l) ++score.correct;
    }
    predictor.record_visit(l);
  }
  return score;
}

std::vector<LandmarkId> visiting_sequence(std::span<const trace::Visit> visits) {
  std::vector<LandmarkId> seq;
  seq.reserve(visits.size());
  for (const auto& v : visits) {
    if (seq.empty() || seq.back() != v.landmark) seq.push_back(v.landmark);
  }
  return seq;
}

}  // namespace dtn::core
