#include "core/markov_predictor.hpp"

#include <algorithm>
#include <string>

#include "persist/serializer.hpp"
#include "sim/invariant_auditor.hpp"
#include "util/assert.hpp"

namespace dtn::core {

namespace {
// 20 bits per landmark id allows 3 context slots in 64 bits.
constexpr std::uint64_t kSlotBits = 20;
constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;
}  // namespace

MarkovPredictor::MarkovPredictor(std::size_t num_landmarks, std::size_t order)
    : num_landmarks_(num_landmarks),
      order_(order),
      successor_pos_(num_landmarks, 0),
      successor_stamp_(num_landmarks, 0) {
  DTN_ASSERT(order_ >= 1 && order_ <= 3);
  DTN_ASSERT(num_landmarks_ > 0 && num_landmarks_ < (1ULL << kSlotBits));
  context_.reserve(order_ + 1);
  // Stamp 0 marks "never seen"; real stamps start at 1.
  stamp_ = 0;
}

std::uint64_t MarkovPredictor::context_key() const {
  // Called only on a full context (length == order): exactly `order_`
  // 20-bit slots, injective — no tag needed, no aliasing possible.
  DTN_ASSERT(context_.size() == order_);
  std::uint64_t key = 0;
  for (const LandmarkId l : context_) {
    key = (key << kSlotBits) | (static_cast<std::uint64_t>(l) & kSlotMask);
  }
  return key;
}

std::uint32_t MarkovPredictor::intern_context(std::uint64_t key) {
  const auto [it, inserted] =
      context_ids_.try_emplace(key, static_cast<std::uint32_t>(
                                        context_count_.size()));
  if (inserted) {
    context_keys_.push_back(key);
    context_count_.push_back(0);
    successors_.emplace_back();
    best_successor_.push_back(kNoLandmark);
    best_count_.push_back(0);
  }
  return it->second;
}

void MarkovPredictor::switch_context(std::uint32_t ctx) {
  current_ctx_ = ctx;
  ++stamp_;
  const auto& succ = successors_[ctx];
  for (std::uint32_t i = 0; i < succ.size(); ++i) {
    successor_pos_[succ[i].landmark] = i;
    successor_stamp_[succ[i].landmark] = stamp_;
  }
}

void MarkovPredictor::record_visit(LandmarkId l) {
  DTN_ASSERT(l < num_landmarks_);
  if (!context_.empty() && context_.back() == l) return;  // not a transit
  if (context_.size() == order_) {
    // A full context precedes l: count the (k+1)-gram c.l in the
    // current context's contiguous successor row.
    DTN_ASSERT(current_ctx_ != kNoContext);
    auto& succ = successors_[current_ctx_];
    std::uint32_t pos;
    if (successor_stamp_[l] == stamp_) {
      pos = successor_pos_[l];
    } else {
      pos = static_cast<std::uint32_t>(succ.size());
      succ.push_back({l, 0});
      successor_pos_[l] = pos;
      successor_stamp_[l] = stamp_;
    }
    const std::uint32_t count = ++succ[pos].count;
    // Maintain the argmax incrementally.  Counts only ever grow by one,
    // so "new count beats the best, or ties it with a smaller id" keeps
    // best_successor_ equal to the full-scan argmax with
    // smaller-id tie-breaking at all times.
    if (count > best_count_[current_ctx_] ||
        (count == best_count_[current_ctx_] &&
         l < best_successor_[current_ctx_])) {
      best_count_[current_ctx_] = count;
      best_successor_[current_ctx_] = l;
    }
  }
  context_.push_back(l);
  if (context_.size() > order_) context_.erase(context_.begin());
  ++history_len_;
  // Count the context as a substring occurrence the moment it forms —
  // eqs. (2)-(3) count *all* occurrences of the k-subsequence in L,
  // including the trailing one (so conditional probabilities over a
  // just-formed context sum to (N(c)-1)/N(c), as in the Song et al.
  // predictor the paper adopts).
  if (context_.size() == order_) {
    const std::uint32_t ctx = intern_context(context_key());
    ++context_count_[ctx];
    switch_context(ctx);
  }
}

LandmarkId MarkovPredictor::current() const {
  return context_.empty() ? kNoLandmark : context_.back();
}

bool MarkovPredictor::can_predict() const {
  return context_.size() == order_ && current_ctx_ != kNoContext &&
         !successors_[current_ctx_].empty();
}

LandmarkId MarkovPredictor::predict() const {
  if (context_.size() < order_) return kNoLandmark;
  return best_successor_[current_ctx_];  // kNoLandmark until a successor
}

double MarkovPredictor::probability_of(LandmarkId l) const {
  DTN_ASSERT(l < num_landmarks_);
  if (context_.size() < order_) return 0.0;
  if (successor_stamp_[l] != stamp_) return 0.0;  // l never followed c
  const auto& entry = successors_[current_ctx_][successor_pos_[l]];
  return static_cast<double>(entry.count) /
         static_cast<double>(context_count_[current_ctx_]);
}

void MarkovPredictor::next_distribution(std::vector<double>& out) const {
  out.assign(num_landmarks_, 0.0);
  if (context_.size() < order_) return;
  const auto& succ = successors_[current_ctx_];
  const auto total = static_cast<double>(context_count_[current_ctx_]);
  for (const SuccCount& entry : succ) {
    out[entry.landmark] = static_cast<double>(entry.count) / total;
  }
}

std::vector<double> MarkovPredictor::next_distribution() const {
  std::vector<double> dist;
  next_distribution(dist);
  return dist;
}

void MarkovPredictor::save(persist::Writer& w) const {
  w.u64(num_landmarks_);
  w.u64(order_);
  w.u64(history_len_);
  w.u64(context_.size());
  for (const LandmarkId l : context_) w.u32(l);
  w.u64(context_keys_.size());
  for (const std::uint64_t k : context_keys_) w.u64(k);
  for (const std::uint32_t c : context_count_) w.u32(c);
  for (const auto& row : successors_) {
    w.u64(row.size());
    for (const SuccCount& s : row) {
      w.u32(s.landmark);
      w.u32(s.count);
    }
  }
  for (const LandmarkId l : best_successor_) w.u32(l);
  for (const std::uint32_t c : best_count_) w.u32(c);
  w.u32(current_ctx_);
  w.u64(stamp_);
  for (const std::uint32_t p : successor_pos_) w.u32(p);
  for (const std::uint64_t s : successor_stamp_) w.u64(s);
}

void MarkovPredictor::load(persist::Reader& r) {
  if (r.u64() != num_landmarks_ || r.u64() != order_) {
    throw persist::FormatError(
        "checkpoint predictor shape (num_landmarks, order) mismatch");
  }
  history_len_ = static_cast<std::size_t>(r.u64());
  context_.resize(static_cast<std::size_t>(r.u64()));
  if (context_.size() > order_) {
    throw persist::FormatError("checkpoint predictor context too long");
  }
  for (LandmarkId& l : context_) l = r.u32();
  const auto contexts = static_cast<std::size_t>(r.u64());
  context_keys_.resize(contexts);
  for (std::uint64_t& k : context_keys_) k = r.u64();
  context_count_.resize(contexts);
  for (std::uint32_t& c : context_count_) c = r.u32();
  successors_.assign(contexts, {});
  for (auto& row : successors_) {
    row.resize(static_cast<std::size_t>(r.u64()));
    for (SuccCount& s : row) {
      s.landmark = r.u32();
      s.count = r.u32();
    }
  }
  best_successor_.resize(contexts);
  for (LandmarkId& l : best_successor_) l = r.u32();
  best_count_.resize(contexts);
  for (std::uint32_t& c : best_count_) c = r.u32();
  current_ctx_ = r.u32();
  stamp_ = r.u64();
  successor_pos_.resize(num_landmarks_);
  for (std::uint32_t& p : successor_pos_) p = r.u32();
  successor_stamp_.resize(num_landmarks_);
  for (std::uint64_t& s : successor_stamp_) s = r.u64();
  if (current_ctx_ != kNoContext && current_ctx_ >= contexts) {
    throw persist::FormatError("checkpoint predictor current context id out of range");
  }
  // Rebuild the (deliberately unserialized) hash map from the dense key
  // vector; duplicate keys mean a corrupt image.
  context_ids_.clear();
  context_ids_.reserve(contexts);
  for (std::uint32_t id = 0; id < contexts; ++id) {
    const auto [it, inserted] =
        context_ids_.emplace(context_keys_[id], id);
    (void)it;
    if (!inserted) {
      throw persist::FormatError("checkpoint predictor has duplicate context keys");
    }
  }
}

void MarkovPredictor::audit(sim::AuditReport& report) const {
  const std::size_t contexts = context_count_.size();
  if (successors_.size() != contexts || best_successor_.size() != contexts ||
      best_count_.size() != contexts || context_ids_.size() != contexts) {
    report.fail("flat-store arrays disagree in size (contexts=" +
                std::to_string(contexts) + ")");
    return;
  }
  std::vector<std::uint8_t> seen(num_landmarks_, 0);
  for (std::size_t ctx = 0; ctx < contexts; ++ctx) {
    const auto& row = successors_[ctx];
    // Full-scan argmax with the same tie-break the hot path maintains
    // incrementally; the two must agree at all times.
    LandmarkId best = kNoLandmark;
    std::uint32_t best_count = 0;
    std::uint64_t row_sum = 0;
    std::fill(seen.begin(), seen.end(), std::uint8_t{0});
    for (const SuccCount& entry : row) {
      if (entry.landmark >= num_landmarks_) {
        report.fail("context " + std::to_string(ctx) +
                    ": successor landmark out of range");
        continue;
      }
      if (seen[entry.landmark] != 0) {
        report.fail("context " + std::to_string(ctx) +
                    ": duplicate successor row entry for landmark " +
                    std::to_string(entry.landmark));
      }
      seen[entry.landmark] = 1;
      if (entry.count == 0) {
        report.fail("context " + std::to_string(ctx) +
                    ": zero-count successor row entry for landmark " +
                    std::to_string(entry.landmark));
      }
      row_sum += entry.count;
      if (entry.count > best_count ||
          (entry.count == best_count && entry.landmark < best)) {
        best = entry.landmark;
        best_count = entry.count;
      }
    }
    if (best != best_successor_[ctx] || best_count != best_count_[ctx]) {
      report.fail("context " + std::to_string(ctx) +
                  ": cached argmax (landmark " +
                  std::to_string(best_successor_[ctx]) + ", count " +
                  std::to_string(best_count_[ctx]) +
                  ") disagrees with full row scan (landmark " +
                  std::to_string(best) + ", count " +
                  std::to_string(best_count) + ")");
    }
    // N(c) counts every occurrence of the context, including trailing
    // ones not (yet) followed by a successor, so the row can sum to at
    // most N(c) and a counted context must have been seen.
    if (context_count_[ctx] == 0) {
      report.fail("context " + std::to_string(ctx) + ": N(c) == 0");
    }
    if (row_sum > context_count_[ctx]) {
      report.fail("context " + std::to_string(ctx) + ": successor counts (" +
                  std::to_string(row_sum) + ") exceed N(c) (" +
                  std::to_string(context_count_[ctx]) + ")");
    }
  }
  // Dense successor index of the current context, both directions.
  if (current_ctx_ != kNoContext) {
    if (current_ctx_ >= contexts) {
      report.fail("current context id out of range");
      return;
    }
    const auto& row = successors_[current_ctx_];
    for (std::size_t i = 0; i < row.size(); ++i) {
      const LandmarkId l = row[i].landmark;
      if (successor_stamp_[l] != stamp_ || successor_pos_[l] != i) {
        report.fail("dense index stale for successor landmark " +
                    std::to_string(l) + " of the current context");
      }
    }
    for (LandmarkId l = 0; l < num_landmarks_; ++l) {
      if (successor_stamp_[l] != stamp_) continue;
      if (successor_pos_[l] >= row.size() ||
          row[successor_pos_[l]].landmark != l) {
        report.fail("dense index points landmark " + std::to_string(l) +
                    " at the wrong successor row slot");
      }
    }
  }
}

bool MarkovPredictor::debug_corrupt_argmax_for_test() {
  for (std::size_t ctx = 0; ctx < successors_.size(); ++ctx) {
    if (successors_[ctx].empty()) continue;
    ++best_count_[ctx];  // a count the row cannot justify
    return true;
  }
  return false;
}

PredictionScore score_sequence(std::size_t num_landmarks, std::size_t order,
                               const std::vector<LandmarkId>& sequence) {
  MarkovPredictor predictor(num_landmarks, order);
  PredictionScore score;
  for (const LandmarkId l : sequence) {
    if (predictor.current() == l) continue;
    const LandmarkId guess = predictor.predict();
    if (guess != kNoLandmark) {
      ++score.predictions;
      if (guess == l) ++score.correct;
    }
    predictor.record_visit(l);
  }
  return score;
}

std::vector<LandmarkId> visiting_sequence(std::span<const trace::Visit> visits) {
  std::vector<LandmarkId> seq;
  seq.reserve(visits.size());
  for (const auto& v : visits) {
    if (seq.empty() || seq.back() != v.landmark) seq.push_back(v.landmark);
  }
  return seq;
}

}  // namespace dtn::core
