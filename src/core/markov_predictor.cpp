#include "core/markov_predictor.hpp"

#include "util/assert.hpp"

namespace dtn::core {

namespace {
// 20 bits per landmark id allows 3 context slots in 64 bits.
constexpr std::uint64_t kSlotBits = 20;
constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;
}  // namespace

MarkovPredictor::MarkovPredictor(std::size_t num_landmarks, std::size_t order)
    : num_landmarks_(num_landmarks),
      order_(order),
      successor_pos_(num_landmarks, 0),
      successor_stamp_(num_landmarks, 0) {
  DTN_ASSERT(order_ >= 1 && order_ <= 3);
  DTN_ASSERT(num_landmarks_ > 0 && num_landmarks_ < (1ULL << kSlotBits));
  context_.reserve(order_ + 1);
  // Stamp 0 marks "never seen"; real stamps start at 1.
  stamp_ = 0;
}

std::uint64_t MarkovPredictor::context_key() const {
  // Called only on a full context (length == order): exactly `order_`
  // 20-bit slots, injective — no tag needed, no aliasing possible.
  DTN_ASSERT(context_.size() == order_);
  std::uint64_t key = 0;
  for (const LandmarkId l : context_) {
    key = (key << kSlotBits) | (static_cast<std::uint64_t>(l) & kSlotMask);
  }
  return key;
}

std::uint32_t MarkovPredictor::intern_context(std::uint64_t key) {
  const auto [it, inserted] =
      context_ids_.try_emplace(key, static_cast<std::uint32_t>(
                                        context_count_.size()));
  if (inserted) {
    context_count_.push_back(0);
    successors_.emplace_back();
    best_successor_.push_back(kNoLandmark);
    best_count_.push_back(0);
  }
  return it->second;
}

void MarkovPredictor::switch_context(std::uint32_t ctx) {
  current_ctx_ = ctx;
  ++stamp_;
  const auto& succ = successors_[ctx];
  for (std::uint32_t i = 0; i < succ.size(); ++i) {
    successor_pos_[succ[i].landmark] = i;
    successor_stamp_[succ[i].landmark] = stamp_;
  }
}

void MarkovPredictor::record_visit(LandmarkId l) {
  DTN_ASSERT(l < num_landmarks_);
  if (!context_.empty() && context_.back() == l) return;  // not a transit
  if (context_.size() == order_) {
    // A full context precedes l: count the (k+1)-gram c.l in the
    // current context's contiguous successor row.
    DTN_ASSERT(current_ctx_ != kNoContext);
    auto& succ = successors_[current_ctx_];
    std::uint32_t pos;
    if (successor_stamp_[l] == stamp_) {
      pos = successor_pos_[l];
    } else {
      pos = static_cast<std::uint32_t>(succ.size());
      succ.push_back({l, 0});
      successor_pos_[l] = pos;
      successor_stamp_[l] = stamp_;
    }
    const std::uint32_t count = ++succ[pos].count;
    // Maintain the argmax incrementally.  Counts only ever grow by one,
    // so "new count beats the best, or ties it with a smaller id" keeps
    // best_successor_ equal to the full-scan argmax with
    // smaller-id tie-breaking at all times.
    if (count > best_count_[current_ctx_] ||
        (count == best_count_[current_ctx_] &&
         l < best_successor_[current_ctx_])) {
      best_count_[current_ctx_] = count;
      best_successor_[current_ctx_] = l;
    }
  }
  context_.push_back(l);
  if (context_.size() > order_) context_.erase(context_.begin());
  ++history_len_;
  // Count the context as a substring occurrence the moment it forms —
  // eqs. (2)-(3) count *all* occurrences of the k-subsequence in L,
  // including the trailing one (so conditional probabilities over a
  // just-formed context sum to (N(c)-1)/N(c), as in the Song et al.
  // predictor the paper adopts).
  if (context_.size() == order_) {
    const std::uint32_t ctx = intern_context(context_key());
    ++context_count_[ctx];
    switch_context(ctx);
  }
}

LandmarkId MarkovPredictor::current() const {
  return context_.empty() ? kNoLandmark : context_.back();
}

bool MarkovPredictor::can_predict() const {
  return context_.size() == order_ && current_ctx_ != kNoContext &&
         !successors_[current_ctx_].empty();
}

LandmarkId MarkovPredictor::predict() const {
  if (context_.size() < order_) return kNoLandmark;
  return best_successor_[current_ctx_];  // kNoLandmark until a successor
}

double MarkovPredictor::probability_of(LandmarkId l) const {
  DTN_ASSERT(l < num_landmarks_);
  if (context_.size() < order_) return 0.0;
  if (successor_stamp_[l] != stamp_) return 0.0;  // l never followed c
  const auto& entry = successors_[current_ctx_][successor_pos_[l]];
  return static_cast<double>(entry.count) /
         static_cast<double>(context_count_[current_ctx_]);
}

void MarkovPredictor::next_distribution(std::vector<double>& out) const {
  out.assign(num_landmarks_, 0.0);
  if (context_.size() < order_) return;
  const auto& succ = successors_[current_ctx_];
  const auto total = static_cast<double>(context_count_[current_ctx_]);
  for (const SuccCount& entry : succ) {
    out[entry.landmark] = static_cast<double>(entry.count) / total;
  }
}

std::vector<double> MarkovPredictor::next_distribution() const {
  std::vector<double> dist;
  next_distribution(dist);
  return dist;
}

PredictionScore score_sequence(std::size_t num_landmarks, std::size_t order,
                               const std::vector<LandmarkId>& sequence) {
  MarkovPredictor predictor(num_landmarks, order);
  PredictionScore score;
  for (const LandmarkId l : sequence) {
    if (predictor.current() == l) continue;
    const LandmarkId guess = predictor.predict();
    if (guess != kNoLandmark) {
      ++score.predictions;
      if (guess == l) ++score.correct;
    }
    predictor.record_visit(l);
  }
  return score;
}

std::vector<LandmarkId> visiting_sequence(std::span<const trace::Visit> visits) {
  std::vector<LandmarkId> seq;
  seq.reserve(visits.size());
  for (const auto& v : visits) {
    if (seq.empty() || seq.back() != v.landmark) seq.push_back(v.landmark);
  }
  return seq;
}

}  // namespace dtn::core
