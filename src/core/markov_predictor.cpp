#include "core/markov_predictor.hpp"

#include <algorithm>
#include <string>

#include "persist/serializer.hpp"
#include "sim/invariant_auditor.hpp"
#include "util/assert.hpp"
#include "util/simd.hpp"

namespace dtn::core {

namespace {
// 20 bits per landmark id allows 3 context slots in 64 bits.
constexpr std::uint64_t kSlotBits = 20;
constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;

// Probe-table empty slot: valid packed keys occupy at most 60 bits
// (order <= 3), so all-ones can never collide with one.
constexpr std::uint64_t kEmptyProbe = ~0ULL;
constexpr std::size_t kInitialProbeCap = 64;

// Multiplicative (Fibonacci) mix; the high half decorrelates the
// low-entropy packed landmark ids before the power-of-two mask.
[[nodiscard]] inline std::size_t probe_index(std::uint64_t key) {
  return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ULL) >> 32);
}
}  // namespace

MarkovPredictor::MarkovPredictor(std::size_t num_landmarks, std::size_t order)
    : num_landmarks_(num_landmarks),
      order_(order),
      successor_pos_(num_landmarks, 0),
      successor_stamp_(num_landmarks, 0) {
  DTN_ASSERT(order_ >= 1 && order_ <= 3);
  DTN_ASSERT(num_landmarks_ > 0 && num_landmarks_ < (1ULL << kSlotBits));
  context_.reserve(order_ + 1);
  probe_keys_.assign(kInitialProbeCap, kEmptyProbe);
  probe_ids_.assign(kInitialProbeCap, 0);
  // Stamp 0 marks "never seen"; real stamps start at 1.
  stamp_ = 0;
}

std::uint64_t MarkovPredictor::context_key() const {
  // Called only on a full context (length == order): exactly `order_`
  // 20-bit slots, injective — no tag needed, no aliasing possible.
  DTN_ASSERT(context_.size() == order_);
  std::uint64_t key = 0;
  for (const LandmarkId l : context_) {
    key = (key << kSlotBits) | (static_cast<std::uint64_t>(l) & kSlotMask);
  }
  return key;
}

std::uint32_t MarkovPredictor::intern_context(std::uint64_t key) {
  DTN_ASSERT(key != kEmptyProbe);
  const std::size_t mask = probe_keys_.size() - 1;
  std::size_t i = probe_index(key) & mask;
  while (probe_keys_[i] != key) {
    if (probe_keys_[i] == kEmptyProbe) {
      const auto id = static_cast<std::uint32_t>(context_count_.size());
      probe_keys_[i] = key;
      probe_ids_[i] = id;
      context_keys_.push_back(key);
      context_count_.push_back(0);
      successors_.emplace_back();
      best_successor_.push_back(kNoLandmark);
      best_count_.push_back(0);
      // Grow at 1/2 load: linear probing stays ~2 slot reads per miss.
      if (2 * context_keys_.size() >= probe_keys_.size()) {
        probe_rehash(2 * probe_keys_.size());
      }
      return id;
    }
    i = (i + 1) & mask;
  }
  return probe_ids_[i];
}

void MarkovPredictor::probe_rehash(std::size_t capacity) {
  DTN_ASSERT((capacity & (capacity - 1)) == 0 &&
             capacity >= 2 * context_keys_.size());
  probe_keys_.assign(capacity, kEmptyProbe);
  probe_ids_.assign(capacity, 0);
  const std::size_t mask = capacity - 1;
  for (std::uint32_t id = 0; id < context_keys_.size(); ++id) {
    std::size_t i = probe_index(context_keys_[id]) & mask;
    while (probe_keys_[i] != kEmptyProbe) i = (i + 1) & mask;
    probe_keys_[i] = context_keys_[id];
    probe_ids_[i] = id;
  }
}

void MarkovPredictor::switch_context(std::uint32_t ctx) {
  current_ctx_ = ctx;
  ++stamp_;
  const SuccRow& succ = successors_[ctx];
  for (std::uint32_t i = 0; i < succ.size(); ++i) {
    successor_pos_[succ.landmark[i]] = i;
    successor_stamp_[succ.landmark[i]] = stamp_;
  }
}

void MarkovPredictor::record_visit(LandmarkId l) {
  DTN_ASSERT(l < num_landmarks_);
  if (!context_.empty() && context_.back() == l) return;  // not a transit
  if (context_.size() == order_) {
    // A full context precedes l: count the (k+1)-gram c.l in the
    // current context's contiguous successor row.
    DTN_ASSERT(current_ctx_ != kNoContext);
    SuccRow& succ = successors_[current_ctx_];
    std::uint32_t pos;
    if (successor_stamp_[l] == stamp_) {
      pos = successor_pos_[l];
    } else {
      pos = static_cast<std::uint32_t>(succ.size());
      succ.landmark.push_back(l);
      succ.count.push_back(0);
      successor_pos_[l] = pos;
      successor_stamp_[l] = stamp_;
    }
    const std::uint32_t count = ++succ.count[pos];
    // Maintain the argmax incrementally.  Counts only ever grow by one,
    // so "new count beats the best, or ties it with a smaller id" keeps
    // best_successor_ equal to the full-scan argmax with
    // smaller-id tie-breaking at all times.
    if (count > best_count_[current_ctx_] ||
        (count == best_count_[current_ctx_] &&
         l < best_successor_[current_ctx_])) {
      best_count_[current_ctx_] = count;
      best_successor_[current_ctx_] = l;
    }
  }
  context_.push_back(l);
  if (context_.size() > order_) context_.erase(context_.begin());
  ++history_len_;
  // Count the context as a substring occurrence the moment it forms —
  // eqs. (2)-(3) count *all* occurrences of the k-subsequence in L,
  // including the trailing one (so conditional probabilities over a
  // just-formed context sum to (N(c)-1)/N(c), as in the Song et al.
  // predictor the paper adopts).
  if (context_.size() == order_) {
    const std::uint32_t ctx = intern_context(context_key());
    ++context_count_[ctx];
    switch_context(ctx);
  }
}

void MarkovPredictor::next_distribution(std::vector<double>& out) const {
  out.assign(num_landmarks_, 0.0);
  if (context_.size() < order_) return;
  const SuccRow& succ = successors_[current_ctx_];
  const auto total = static_cast<double>(context_count_[current_ctx_]);
  const std::size_t n = succ.size();
#if defined(__GNUC__) && !defined(DTN_SIMD_SCALAR)
  if (simd::kEnabled && !simd::scalar_forced() && n >= simd::kDoubleLanes) {
    // SoA pass: convert + divide the contiguous count column a vector
    // at a time (per-lane u32->f64 convert and divide are exactly the
    // scalar results), then scatter through the landmark column.
    const simd::VDouble vtotal = simd::broadcast(total);
    double probs[simd::kDoubleLanes];
    std::size_t i = 0;
    for (; i + simd::kDoubleLanes <= n; i += simd::kDoubleLanes) {
      simd::VU32 counts = simd::loadu_u32(&succ.count[i]);
      simd::storeu(probs, simd::to_double(counts) / vtotal);
      for (std::size_t j = 0; j < simd::kDoubleLanes; ++j) {
        out[succ.landmark[i + j]] = probs[j];
      }
    }
    for (; i < n; ++i) {
      out[succ.landmark[i]] = static_cast<double>(succ.count[i]) / total;
    }
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    out[succ.landmark[i]] = static_cast<double>(succ.count[i]) / total;
  }
}

std::vector<double> MarkovPredictor::next_distribution() const {
  std::vector<double> dist;
  next_distribution(dist);
  return dist;
}

void MarkovPredictor::save(persist::Writer& w) const {
  w.u64(num_landmarks_);
  w.u64(order_);
  w.u64(history_len_);
  w.u64(context_.size());
  for (const LandmarkId l : context_) w.u32(l);
  w.u64(context_keys_.size());
  for (const std::uint64_t k : context_keys_) w.u64(k);
  for (const std::uint32_t c : context_count_) w.u32(c);
  for (const SuccRow& row : successors_) {
    // Interleaved (landmark, count) pairs: the SoA split must not change
    // the checkpoint byte layout.
    w.u64(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      w.u32(row.landmark[i]);
      w.u32(row.count[i]);
    }
  }
  for (const LandmarkId l : best_successor_) w.u32(l);
  for (const std::uint32_t c : best_count_) w.u32(c);
  w.u32(current_ctx_);
  w.u64(stamp_);
  for (const std::uint32_t p : successor_pos_) w.u32(p);
  for (const std::uint64_t s : successor_stamp_) w.u64(s);
}

void MarkovPredictor::load(persist::Reader& r) {
  if (r.u64() != num_landmarks_ || r.u64() != order_) {
    throw persist::FormatError(
        "checkpoint predictor shape (num_landmarks, order) mismatch");
  }
  history_len_ = static_cast<std::size_t>(r.u64());
  context_.resize(static_cast<std::size_t>(r.u64()));
  if (context_.size() > order_) {
    throw persist::FormatError("checkpoint predictor context too long");
  }
  for (LandmarkId& l : context_) l = r.u32();
  const auto contexts = static_cast<std::size_t>(r.u64());
  context_keys_.resize(contexts);
  for (std::uint64_t& k : context_keys_) k = r.u64();
  context_count_.resize(contexts);
  for (std::uint32_t& c : context_count_) c = r.u32();
  successors_.assign(contexts, {});
  for (SuccRow& row : successors_) {
    const auto len = static_cast<std::size_t>(r.u64());
    row.landmark.resize(len);
    row.count.resize(len);
    for (std::size_t i = 0; i < len; ++i) {
      row.landmark[i] = r.u32();
      row.count[i] = r.u32();
    }
  }
  best_successor_.resize(contexts);
  for (LandmarkId& l : best_successor_) l = r.u32();
  best_count_.resize(contexts);
  for (std::uint32_t& c : best_count_) c = r.u32();
  current_ctx_ = r.u32();
  stamp_ = r.u64();
  successor_pos_.resize(num_landmarks_);
  for (std::uint32_t& p : successor_pos_) p = r.u32();
  successor_stamp_.resize(num_landmarks_);
  for (std::uint64_t& s : successor_stamp_) s = r.u64();
  if (current_ctx_ != kNoContext && current_ctx_ >= contexts) {
    throw persist::FormatError("checkpoint predictor current context id out of range");
  }
  // Rebuild the (deliberately unserialized) probe table from the dense
  // key vector; duplicate or over-wide keys mean a corrupt image (a
  // valid key has exactly `order_` 20-bit slots, so it can never equal
  // the empty-slot sentinel either).
  std::size_t capacity = kInitialProbeCap;
  while (capacity < 2 * (contexts + 1)) capacity *= 2;
  probe_keys_.assign(capacity, kEmptyProbe);
  probe_ids_.assign(capacity, 0);
  const std::size_t mask = capacity - 1;
  for (std::uint32_t id = 0; id < contexts; ++id) {
    const std::uint64_t key = context_keys_[id];
    if ((key >> (kSlotBits * order_)) != 0) {  // shift <= 60, well-defined
      throw persist::FormatError("checkpoint predictor context key out of range");
    }
    std::size_t i = probe_index(key) & mask;
    while (probe_keys_[i] != kEmptyProbe) {
      if (probe_keys_[i] == key) {
        throw persist::FormatError("checkpoint predictor has duplicate context keys");
      }
      i = (i + 1) & mask;
    }
    probe_keys_[i] = key;
    probe_ids_[i] = id;
  }
}

void MarkovPredictor::audit(sim::AuditReport& report) const {
  const std::size_t contexts = context_count_.size();
  std::size_t probe_occupied = 0;
  for (const std::uint64_t k : probe_keys_) {
    if (k != kEmptyProbe) ++probe_occupied;
  }
  if (successors_.size() != contexts || best_successor_.size() != contexts ||
      best_count_.size() != contexts || probe_occupied != contexts) {
    report.fail("flat-store arrays disagree in size (contexts=" +
                std::to_string(contexts) + ")");
    return;
  }
  // Every dense key must resolve to its own id through the probe table
  // (the bug class: a rehash or insert that desynchronizes the mirror).
  const std::size_t probe_mask = probe_keys_.size() - 1;
  for (std::uint32_t id = 0; id < contexts; ++id) {
    std::size_t i = probe_index(context_keys_[id]) & probe_mask;
    while (probe_keys_[i] != context_keys_[id]) {
      if (probe_keys_[i] == kEmptyProbe) break;
      i = (i + 1) & probe_mask;
    }
    if (probe_keys_[i] != context_keys_[id] || probe_ids_[i] != id) {
      report.fail("context key " + std::to_string(context_keys_[id]) +
                  " does not resolve to dense id " + std::to_string(id) +
                  " through the probe table");
      return;
    }
  }
  std::vector<std::uint8_t> seen(num_landmarks_, 0);
  for (std::size_t ctx = 0; ctx < contexts; ++ctx) {
    const SuccRow& row = successors_[ctx];
    if (row.landmark.size() != row.count.size()) {
      report.fail("context " + std::to_string(ctx) +
                  ": SoA successor columns disagree in length (" +
                  std::to_string(row.landmark.size()) + " landmarks vs " +
                  std::to_string(row.count.size()) + " counts)");
      continue;
    }
    // Full-scan argmax with the same tie-break the hot path maintains
    // incrementally; the two must agree at all times.
    LandmarkId best = kNoLandmark;
    std::uint32_t best_count = 0;
    std::uint64_t row_sum = 0;
    std::fill(seen.begin(), seen.end(), std::uint8_t{0});
    for (std::size_t i = 0; i < row.size(); ++i) {
      const LandmarkId lm = row.landmark[i];
      const std::uint32_t cnt = row.count[i];
      if (lm >= num_landmarks_) {
        report.fail("context " + std::to_string(ctx) +
                    ": successor landmark out of range");
        continue;
      }
      if (seen[lm] != 0) {
        report.fail("context " + std::to_string(ctx) +
                    ": duplicate successor row entry for landmark " +
                    std::to_string(lm));
      }
      seen[lm] = 1;
      if (cnt == 0) {
        report.fail("context " + std::to_string(ctx) +
                    ": zero-count successor row entry for landmark " +
                    std::to_string(lm));
      }
      row_sum += cnt;
      if (cnt > best_count || (cnt == best_count && lm < best)) {
        best = lm;
        best_count = cnt;
      }
    }
    if (best != best_successor_[ctx] || best_count != best_count_[ctx]) {
      report.fail("context " + std::to_string(ctx) +
                  ": cached argmax (landmark " +
                  std::to_string(best_successor_[ctx]) + ", count " +
                  std::to_string(best_count_[ctx]) +
                  ") disagrees with full row scan (landmark " +
                  std::to_string(best) + ", count " +
                  std::to_string(best_count) + ")");
    }
    // N(c) counts every occurrence of the context, including trailing
    // ones not (yet) followed by a successor, so the row can sum to at
    // most N(c) and a counted context must have been seen.
    if (context_count_[ctx] == 0) {
      report.fail("context " + std::to_string(ctx) + ": N(c) == 0");
    }
    if (row_sum > context_count_[ctx]) {
      report.fail("context " + std::to_string(ctx) + ": successor counts (" +
                  std::to_string(row_sum) + ") exceed N(c) (" +
                  std::to_string(context_count_[ctx]) + ")");
    }
  }
  // Dense successor index of the current context, both directions.
  if (current_ctx_ != kNoContext) {
    if (current_ctx_ >= contexts) {
      report.fail("current context id out of range");
      return;
    }
    const SuccRow& row = successors_[current_ctx_];
    for (std::size_t i = 0; i < row.size(); ++i) {
      const LandmarkId l = row.landmark[i];
      if (successor_stamp_[l] != stamp_ || successor_pos_[l] != i) {
        report.fail("dense index stale for successor landmark " +
                    std::to_string(l) + " of the current context");
      }
    }
    for (LandmarkId l = 0; l < num_landmarks_; ++l) {
      if (successor_stamp_[l] != stamp_) continue;
      if (successor_pos_[l] >= row.size() ||
          row.landmark[successor_pos_[l]] != l) {
        report.fail("dense index points landmark " + std::to_string(l) +
                    " at the wrong successor row slot");
      }
    }
  }
}

bool MarkovPredictor::debug_corrupt_argmax_for_test() {
  for (std::size_t ctx = 0; ctx < successors_.size(); ++ctx) {
    if (successors_[ctx].empty()) continue;
    ++best_count_[ctx];  // a count the row cannot justify
    return true;
  }
  return false;
}

PredictionScore score_sequence(std::size_t num_landmarks, std::size_t order,
                               const std::vector<LandmarkId>& sequence) {
  MarkovPredictor predictor(num_landmarks, order);
  PredictionScore score;
  for (const LandmarkId l : sequence) {
    if (predictor.current() == l) continue;
    const LandmarkId guess = predictor.predict();
    if (guess != kNoLandmark) {
      ++score.predictions;
      if (guess == l) ++score.correct;
    }
    predictor.record_visit(l);
  }
  return score;
}

std::vector<LandmarkId> visiting_sequence(std::span<const trace::Visit> visits) {
  std::vector<LandmarkId> seq;
  seq.reserve(visits.size());
  for (const auto& v : visits) {
    if (seq.empty() || seq.back() != v.landmark) seq.push_back(v.landmark);
  }
  return seq;
}

}  // namespace dtn::core
