// Transit-link bandwidth measurement (§IV-C.1).
//
// The bandwidth of directed link l_i -> l_j is the average number of
// node transits per measurement time unit, smoothed across units with
// the paper's eq. (4):
//
//   B_new(i->j) = rho * n_t(i->j) + (1 - rho) * B_old(i->j)
//
// where n_t is the transit count of the unit that just ended.  The
// arrival side l_j observes transits directly (arriving nodes report
// their previous landmark); the departure side l_i learns its outgoing
// bandwidth through reverse-notification tokens carried by nodes
// predicted to move i -> j (falling back to the symmetry observation
// O3).  In this engine both sides read the same estimate; the token
// mechanism's only observable effect is at most one extra unit of
// staleness, which the EWMA already dominates.
//
// A link's *expected forwarding delay* is the mean interval between
// carrier departures: time_unit / B (infinite for B = 0).  This is the
// delay the distance-vector tables minimize.
#pragma once

#include <limits>
#include <vector>

#include "trace/trace.hpp"
#include "util/flat_matrix.hpp"

namespace dtn::persist {
class Writer;
class Reader;
}  // namespace dtn::persist

namespace dtn::core {

class BandwidthEstimator {
 public:
  /// `rho` is the EWMA weight on the newest unit's count (0 < rho <= 1).
  BandwidthEstimator(std::size_t num_landmarks, double rho);

  /// A node completed a transit from `from` to `to` (counted in the
  /// current, not yet closed, unit).
  void record_transit(trace::LandmarkId from, trace::LandmarkId to);

  /// Close the current measurement unit: fold counts into the EWMA and
  /// reset them (call at each time-unit boundary).
  void close_unit();

  /// Smoothed transits-per-unit of a directed link.
  [[nodiscard]] double bandwidth(trace::LandmarkId from,
                                 trace::LandmarkId to) const;

  /// Expected forwarding delay over the link in seconds
  /// (= time_unit_seconds / bandwidth; +infinity when bandwidth is 0).
  [[nodiscard]] double expected_delay(trace::LandmarkId from,
                                      trace::LandmarkId to,
                                      double time_unit_seconds) const;

  /// Neighbors of `from`: landmarks with positive outgoing bandwidth.
  [[nodiscard]] std::vector<trace::LandmarkId> neighbors(
      trace::LandmarkId from) const;

  /// Raw transit count accumulated in the still-open unit.
  [[nodiscard]] std::uint32_t open_unit_count(trace::LandmarkId from,
                                              trace::LandmarkId to) const;

  [[nodiscard]] std::size_t num_landmarks() const { return ewma_.rows(); }
  [[nodiscard]] std::size_t units_closed() const { return units_closed_; }

  [[nodiscard]] static constexpr double infinite_delay() {
    return std::numeric_limits<double>::infinity();
  }

  // -- checkpointing (src/persist/, docs/checkpointing.md) --------------
  void save(persist::Writer& w) const;
  void load(persist::Reader& r);

 private:
  double rho_;
  FlatMatrix<std::uint32_t> counts_;
  FlatMatrix<double> ewma_;
  std::size_t units_closed_ = 0;
};

}  // namespace dtn::core
