#include "core/routing_table.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dtn::core {

RoutingTable::RoutingTable(LandmarkId self, std::size_t num_landmarks)
    : self_(self),
      link_delay_(num_landmarks, kInfiniteDelay),
      advertised_(num_landmarks, num_landmarks, kInfiniteDelay),
      last_seq_(num_landmarks, 0),
      pinned_(num_landmarks, 0),
      pin_route_(num_landmarks),
      routes_(num_landmarks) {
  DTN_ASSERT(self < num_landmarks);
  // A neighbor always advertises delay 0 to itself even before we have
  // merged anything from it (direct links are usable immediately).
  for (std::size_t v = 0; v < num_landmarks; ++v) {
    advertised_.at(v, v) = 0.0;
  }
}

void RoutingTable::set_link_delay(LandmarkId neighbor, double delay) {
  DTN_ASSERT(neighbor < link_delay_.size());
  DTN_ASSERT(neighbor != self_);
  DTN_ASSERT(delay >= 0.0);
  if (link_delay_[neighbor] != delay) {
    link_delay_[neighbor] = delay;
    dirty_ = true;
  }
}

double RoutingTable::link_delay(LandmarkId neighbor) const {
  DTN_ASSERT(neighbor < link_delay_.size());
  return link_delay_[neighbor];
}

bool RoutingTable::merge(const DistanceVector& dv) {
  DTN_ASSERT(dv.origin < link_delay_.size());
  DTN_ASSERT(dv.delay.size() == link_delay_.size());
  if (dv.origin == self_) return false;
  if (dv.seq + 1 <= last_seq_[dv.origin]) return false;  // stale
  last_seq_[dv.origin] = dv.seq + 1;
  for (std::size_t d = 0; d < dv.delay.size(); ++d) {
    advertised_.at(dv.origin, d) = dv.delay[d];
  }
  advertised_.at(dv.origin, dv.origin) = 0.0;
  dirty_ = true;
  return true;
}

void RoutingTable::recompute() const {
  if (!dirty_) return;
  const std::size_t n = link_delay_.size();
  for (std::size_t d = 0; d < n; ++d) {
    Route r;
    if (d == self_) {
      r.next = self_;
      r.delay = 0.0;
      routes_[d] = r;
      continue;
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (v == self_) continue;
      const double ld = link_delay_[v];
      if (ld == kInfiniteDelay) continue;
      const double adv = advertised_.at(v, d);
      if (adv == kInfiniteDelay) continue;
      const double cost = ld + adv;
      if (cost < r.delay) {
        r.backup_next = r.next;
        r.backup_delay = r.delay;
        r.next = static_cast<LandmarkId>(v);
        r.delay = cost;
      } else if (cost < r.backup_delay) {
        r.backup_next = static_cast<LandmarkId>(v);
        r.backup_delay = cost;
      }
    }
    if (pinned_[d] != 0) {
      // The pinned (injected) route replaces the best; the organically
      // computed best becomes the backup so load balancing still works.
      Route pr = pin_route_[d];
      pr.backup_next = r.next;
      pr.backup_delay = r.delay;
      routes_[d] = pr;
    } else {
      routes_[d] = r;
    }
  }
  dirty_ = false;
}

Route RoutingTable::route(LandmarkId dst) const {
  DTN_ASSERT(dst < link_delay_.size());
  recompute();
  return routes_[dst];
}

double RoutingTable::delay_to(LandmarkId dst) const { return route(dst).delay; }

DistanceVector RoutingTable::snapshot() {
  recompute();
  DistanceVector dv;
  dv.origin = self_;
  dv.seq = seq_++;
  dv.delay.resize(link_delay_.size());
  for (std::size_t d = 0; d < dv.delay.size(); ++d) {
    dv.delay[d] = routes_[d].delay;
  }
  dv.delay[self_] = 0.0;
  return dv;
}

double RoutingTable::coverage() const {
  recompute();
  const std::size_t n = link_delay_.size();
  if (n <= 1) return 1.0;
  std::size_t reachable = 0;
  for (std::size_t d = 0; d < n; ++d) {
    if (d == self_) continue;
    if (routes_[d].reachable() && routes_[d].delay != kInfiniteDelay) {
      ++reachable;
    }
  }
  return static_cast<double>(reachable) / static_cast<double>(n - 1);
}

std::vector<LandmarkId> RoutingTable::next_hops() const {
  recompute();
  std::vector<LandmarkId> out(link_delay_.size(), kNoLandmark);
  for (std::size_t d = 0; d < out.size(); ++d) {
    out[d] = routes_[d].next;
  }
  return out;
}

void RoutingTable::pin(LandmarkId dst, LandmarkId next, double fake_delay) {
  DTN_ASSERT(dst < link_delay_.size());
  DTN_ASSERT(next < link_delay_.size());
  DTN_ASSERT(dst != self_);
  pinned_[dst] = 1;
  Route r;
  r.next = next;
  r.delay = fake_delay;
  pin_route_[dst] = r;
  dirty_ = true;
}

void RoutingTable::unpin(LandmarkId dst) {
  DTN_ASSERT(dst < link_delay_.size());
  if (pinned_[dst] != 0) {
    pinned_[dst] = 0;
    dirty_ = true;
  }
}

bool RoutingTable::is_pinned(LandmarkId dst) const {
  DTN_ASSERT(dst < link_delay_.size());
  return pinned_[dst] != 0;
}

}  // namespace dtn::core
