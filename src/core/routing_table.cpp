#include "core/routing_table.hpp"

#include <algorithm>
#include <bit>
#include <string>

#include "persist/flat_io.hpp"
#include "persist/serializer.hpp"
#include "sim/invariant_auditor.hpp"
#include "util/assert.hpp"
#include "util/simd.hpp"

namespace dtn::core {

RoutingTable::RoutingTable(LandmarkId self, std::size_t num_landmarks)
    : self_(self),
      link_delay_(num_landmarks, kInfiniteDelay),
      advertised_(num_landmarks, num_landmarks, kInfiniteDelay),
      advertised_T_(num_landmarks, num_landmarks, kInfiniteDelay),
      last_seq_(num_landmarks, 0),
      advertised_time_(num_landmarks, 0.0),
      expired_(num_landmarks, 0),
      pinned_(num_landmarks, 0),
      pin_route_(num_landmarks),
      routes_(num_landmarks),
      column_dirty_(num_landmarks, 0) {
  DTN_ASSERT(self < num_landmarks);
  // A neighbor always advertises delay 0 to itself even before we have
  // merged anything from it (direct links are usable immediately).
  for (std::size_t v = 0; v < num_landmarks; ++v) {
    advertised_.at(v, v) = 0.0;
    advertised_T_.at(v, v) = 0.0;
  }
}

void RoutingTable::rebuild_transposed() {
  const std::size_t n = link_delay_.size();
  for (std::size_t o = 0; o < n; ++o) {
    for (std::size_t d = 0; d < n; ++d) {
      advertised_T_.at(d, o) = advertised_.at(o, d);
    }
  }
}

void RoutingTable::mark_dirty(LandmarkId dst) {
  dirty_ = true;
  if (all_dirty_ || column_dirty_[dst] != 0) return;
  column_dirty_[dst] = 1;
  dirty_columns_.push_back(dst);
}

void RoutingTable::mark_all_dirty() {
  dirty_ = true;
  all_dirty_ = true;
}

void RoutingTable::set_link_delay(LandmarkId neighbor, double delay) {
  DTN_ASSERT(neighbor < link_delay_.size());
  DTN_ASSERT(neighbor != self_);
  DTN_ASSERT(delay >= 0.0);
  if (link_delay_[neighbor] != delay) {
    link_delay_[neighbor] = delay;
    // A changed link cost touches every destination routed (or now
    // routable) through `neighbor`, which can be any column.
    mark_all_dirty();
  }
}

double RoutingTable::link_delay(LandmarkId neighbor) const {
  DTN_ASSERT(neighbor < link_delay_.size());
  return link_delay_[neighbor];
}

bool RoutingTable::merge(const DistanceVector& dv, double now) {
  DTN_ASSERT(dv.origin < link_delay_.size());
  DTN_ASSERT(dv.delay.size() == link_delay_.size());
  if (dv.origin == self_) return false;
  if (dv.seq + 1 <= last_seq_[dv.origin]) return false;  // stale
  last_seq_[dv.origin] = dv.seq + 1;
  advertised_time_[dv.origin] = now;
  expired_[dv.origin] = 0;  // a fresh vector revives a withdrawn origin
  const std::size_t n = dv.delay.size();
  const LandmarkId origin = dv.origin;
  double* row = advertised_.row_ptr(origin);
  const double* in = dv.delay.data();
  // Apply one incoming cell: advertised matrix, transposed mirror and
  // dirty marking move together.
  const auto apply = [&](std::size_t d, double incoming) {
    if (row[d] != incoming) {
      row[d] = incoming;
      advertised_T_.at(d, origin) = incoming;
      mark_dirty(static_cast<LandmarkId>(d));
    }
  };
#if defined(__GNUC__) && !defined(DTN_SIMD_SCALAR)
  if (simd::kEnabled && !simd::scalar_forced()) {
    // Vectorized changed-cell scan: compare a whole block at a time and
    // fall back to per-cell application only inside blocks that differ.
    // Cells are visited in ascending destination order either way, so
    // the dirty list grows in exactly the serial order.
    const auto sweep = [&](std::size_t lo, std::size_t hi) {
      std::size_t d = lo;
      for (; d + simd::kDoubleLanes <= hi; d += simd::kDoubleLanes) {
        const simd::VMask diff = simd::loadu(row + d) != simd::loadu(in + d);
        if (!simd::any(diff)) continue;
        for (std::size_t j = d; j < d + simd::kDoubleLanes; ++j) {
          apply(j, in[j]);
        }
      }
      for (; d < hi; ++d) apply(d, in[d]);
    };
    // A neighbor advertises delay 0 to itself regardless of payload, so
    // the origin cell splits the row into two plain compare segments.
    sweep(0, origin);
    apply(origin, 0.0);
    sweep(origin + 1, n);
    return true;
  }
#endif
  for (std::size_t d = 0; d < n; ++d) {
    apply(d, d == origin ? 0.0 : in[d]);
  }
  return true;
}

Route RoutingTable::compute_column_scalar(LandmarkId dst) const {
  if (dst == self_) {
    Route r;
    r.next = self_;
    r.delay = 0.0;
    return r;
  }
  const std::size_t n = link_delay_.size();
  Route r;
  for (std::size_t v = 0; v < n; ++v) {
    if (v == self_) continue;
    const double ld = link_delay_[v];
    if (ld == kInfiniteDelay) continue;
    const double adv = advertised_.at(v, dst);
    if (adv == kInfiniteDelay) continue;
    const double cost = ld + adv;
    if (cost < r.delay) {
      r.backup_next = r.next;
      r.backup_delay = r.delay;
      r.next = static_cast<LandmarkId>(v);
      r.delay = cost;
    } else if (cost < r.backup_delay) {
      r.backup_next = static_cast<LandmarkId>(v);
      r.backup_delay = cost;
    }
  }
  if (pinned_[dst] != 0) {
    // The pinned (injected) route replaces the best; the organically
    // computed best becomes the backup so load balancing still works.
    Route pr = pin_route_[dst];
    pr.backup_next = r.next;
    pr.backup_delay = r.delay;
    return pr;
  }
  return r;
}

Route RoutingTable::compute_column(LandmarkId dst) const {
#if defined(__GNUC__) && !defined(DTN_SIMD_SCALAR)
  if (!simd::kEnabled || simd::scalar_forced()) {
    return compute_column_scalar(dst);
  }
  if (dst == self_) {
    Route r;
    r.next = self_;
    r.delay = 0.0;
    return r;
  }
  // Fused min / second-min sweep over the contiguous cost row
  // cost[v] = link_delay[v] + advertised_T[dst][v].  Equivalent to the
  // scalar running best/backup scan: the best hop is the *first* index
  // attaining the row minimum, the backup the first index attaining the
  // minimum with the best excluded — exactly the strict-< tie-break
  // order of the serial loop (docs/simd-hot-path.md).  Excluded
  // neighbors need no masking: link_delay_[self_] is always infinite,
  // and any infinite link or advertisement makes cost[v] infinite,
  // which can never win.  Each lane tracks its two smallest values
  // (with multiplicity), so one pass yields both the minimum and the
  // minimum-excluding-one-instance; indices are recovered by short
  // equality scans that recompute cost with the identical ld + adv
  // arithmetic (no scratch stores).
  const std::size_t n = link_delay_.size();
  const double* ld = link_delay_.data();
  const double* adv = advertised_T_.row_ptr(dst);
  // Two independent accumulator pairs break the min/min latency chain;
  // merging two (smallest, second-smallest) pairs afterwards is the
  // same multiset-union merge the lane reduction performs.
  simd::VDouble vm1 = simd::broadcast(kInfiniteDelay);
  simd::VDouble vm2 = vm1;
  simd::VDouble wm1 = vm1;
  simd::VDouble wm2 = vm1;
  std::size_t v = 0;
  for (; v + 2 * simd::kDoubleLanes <= n; v += 2 * simd::kDoubleLanes) {
    const simd::VDouble c0 = simd::loadu(ld + v) + simd::loadu(adv + v);
    const simd::VDouble c1 = simd::loadu(ld + v + simd::kDoubleLanes) +
                             simd::loadu(adv + v + simd::kDoubleLanes);
    vm2 = simd::vmin(vm2, simd::vmax(vm1, c0));
    vm1 = simd::vmin(vm1, c0);
    wm2 = simd::vmin(wm2, simd::vmax(wm1, c1));
    wm1 = simd::vmin(wm1, c1);
  }
  for (; v + simd::kDoubleLanes <= n; v += simd::kDoubleLanes) {
    const simd::VDouble c = simd::loadu(ld + v) + simd::loadu(adv + v);
    vm2 = simd::vmin(vm2, simd::vmax(vm1, c));
    vm1 = simd::vmin(vm1, c);
  }
  vm2 = simd::vmin(simd::vmin(vm2, wm2), simd::vmax(vm1, wm1));
  vm1 = simd::vmin(vm1, wm1);
  // Merge the per-lane pairs, then the scalar tail: for two multisets
  // with smallest pairs (a1, a2) and (b1, b2), the merged pair is
  // (min(a1, b1), min(max(a1, b1), a2, b2)).
  double m1 = kInfiniteDelay;
  double m2 = kInfiniteDelay;
  for (std::size_t lane = 0; lane < simd::kDoubleLanes; ++lane) {
    const double b1 = vm1[lane];
    const double b2 = vm2[lane];
    const double hi = m1 > b1 ? m1 : b1;
    m1 = m1 < b1 ? m1 : b1;
    m2 = m2 < b2 ? m2 : b2;
    m2 = m2 < hi ? m2 : hi;
  }
  for (; v < n; ++v) {
    const double c = ld[v] + adv[v];
    const double hi = m1 > c ? m1 : c;
    m1 = m1 < c ? m1 : c;
    m2 = m2 < hi ? m2 : hi;
  }
  Route r;
  if (m1 != kInfiniteDelay) {
    std::size_t best = 0;
    while (ld[best] + adv[best] != m1) ++best;
    r.next = static_cast<LandmarkId>(best);
    r.delay = ld[best] + adv[best];  // the first-argmin's bits
    if (m2 != kInfiniteDelay) {
      std::size_t backup = best == 0 ? 1 : 0;
      while (backup == best || ld[backup] + adv[backup] != m2) ++backup;
      r.backup_next = static_cast<LandmarkId>(backup);
      r.backup_delay = ld[backup] + adv[backup];
    }
  }
  if (pinned_[dst] != 0) {
    Route pr = pin_route_[dst];
    pr.backup_next = r.next;
    pr.backup_delay = r.delay;
    return pr;
  }
  return r;
#else
  return compute_column_scalar(dst);
#endif
}

void RoutingTable::recompute_column(LandmarkId dst) const {
  routes_[dst] = compute_column(dst);
}

void RoutingTable::recompute() const {
  if (!dirty_) return;
  if (all_dirty_) {
    const std::size_t n = link_delay_.size();
    for (std::size_t d = 0; d < n; ++d) {
      recompute_column(static_cast<LandmarkId>(d));
    }
    all_dirty_ = false;
  } else {
    for (const LandmarkId d : dirty_columns_) {
      recompute_column(d);
    }
  }
  for (const LandmarkId d : dirty_columns_) column_dirty_[d] = 0;
  dirty_columns_.clear();
  dirty_ = false;
}

Route RoutingTable::route(LandmarkId dst) const {
  DTN_ASSERT(dst < link_delay_.size());
  recompute();
  return routes_[dst];
}

double RoutingTable::delay_to(LandmarkId dst) const { return route(dst).delay; }

DistanceVector RoutingTable::snapshot() {
  recompute();
  DistanceVector dv;
  dv.origin = self_;
  dv.seq = seq_++;
  dv.delay.resize(link_delay_.size());
  for (std::size_t d = 0; d < dv.delay.size(); ++d) {
    dv.delay[d] = routes_[d].delay;
  }
  dv.delay[self_] = 0.0;
  return dv;
}

double RoutingTable::coverage() const {
  recompute();
  const std::size_t n = link_delay_.size();
  if (n <= 1) return 1.0;
  std::size_t reachable = 0;
  for (std::size_t d = 0; d < n; ++d) {
    if (d == self_) continue;
    if (routes_[d].reachable() && routes_[d].delay != kInfiniteDelay) {
      ++reachable;
    }
  }
  return static_cast<double>(reachable) / static_cast<double>(n - 1);
}

std::vector<LandmarkId> RoutingTable::next_hops() const {
  recompute();
  std::vector<LandmarkId> out(link_delay_.size(), kNoLandmark);
  for (std::size_t d = 0; d < out.size(); ++d) {
    out[d] = routes_[d].next;
  }
  return out;
}

std::size_t RoutingTable::expire_stale(double cutoff) {
  const std::size_t n = link_delay_.size();
  std::size_t expired = 0;
  for (std::size_t o = 0; o < n; ++o) {
    if (o == self_) continue;
    if (last_seq_[o] == 0) continue;  // never advertised: bootstrap row stays
    if (expired_[o] != 0) continue;
    if (advertised_time_[o] >= cutoff) continue;
    for (std::size_t d = 0; d < n; ++d) {
      advertised_.at(o, d) = kInfiniteDelay;
      advertised_T_.at(d, o) = kInfiniteDelay;
    }
    expired_[o] = 1;
    ++expired;
  }
  // A withdrawn origin can have been the best hop toward any column.
  if (expired != 0) mark_all_dirty();
  return expired;
}

bool RoutingTable::origin_expired(LandmarkId origin) const {
  DTN_ASSERT(origin < link_delay_.size());
  return expired_[origin] != 0;
}

double RoutingTable::advertised_time(LandmarkId origin) const {
  DTN_ASSERT(origin < link_delay_.size());
  return advertised_time_[origin];
}

void RoutingTable::pin(LandmarkId dst, LandmarkId next, double fake_delay) {
  DTN_ASSERT(dst < link_delay_.size());
  DTN_ASSERT(next < link_delay_.size());
  DTN_ASSERT(dst != self_);
  pinned_[dst] = 1;
  Route r;
  r.next = next;
  r.delay = fake_delay;
  pin_route_[dst] = r;
  mark_dirty(dst);
}

void RoutingTable::unpin(LandmarkId dst) {
  DTN_ASSERT(dst < link_delay_.size());
  if (pinned_[dst] != 0) {
    pinned_[dst] = 0;
    mark_dirty(dst);
  }
}

bool RoutingTable::is_pinned(LandmarkId dst) const {
  DTN_ASSERT(dst < link_delay_.size());
  return pinned_[dst] != 0;
}

void RoutingTable::audit(sim::AuditReport& report) const {
  const std::size_t n = link_delay_.size();
  const auto prefix = [this](LandmarkId dst) {
    return "table " + std::to_string(self_) + ", destination " +
           std::to_string(dst) + ": ";
  };
  // Bookkeeping: the compact dirty list and the dense flag array must
  // describe the same set, and a clean table must have an empty set.
  std::size_t flagged = 0;
  for (std::size_t d = 0; d < n; ++d) {
    if (column_dirty_[d] != 0) ++flagged;
  }
  std::vector<std::uint8_t> listed(n, 0);
  for (const LandmarkId d : dirty_columns_) {
    if (d >= n) {
      report.fail("dirty list names an out-of-range column");
      continue;
    }
    if (listed[d] != 0) {
      report.fail(prefix(d) + "column listed dirty twice");
    }
    listed[d] = 1;
    if (column_dirty_[d] == 0) {
      report.fail(prefix(d) + "column in the dirty list but not flagged");
    }
  }
  if (flagged != dirty_columns_.size()) {
    report.fail("dirty flag count (" + std::to_string(flagged) +
                ") disagrees with the dirty list (" +
                std::to_string(dirty_columns_.size()) + " entries)");
  }
  if (!dirty_ && (all_dirty_ || !dirty_columns_.empty())) {
    report.fail("table claims clean while columns are marked dirty");
  }
  if (all_dirty_ && !dirty_) {
    report.fail("all_dirty_ set on a clean table");
  }
  // SoA mirror: the transposed advertised matrix must equal advertised_
  // cell-for-cell, bit-for-bit — a merge path that forgot the mirror
  // would silently feed the SIMD column sweep stale costs.
  if (advertised_T_.rows() != n || advertised_T_.cols() != n) {
    report.fail("transposed advertised mirror has the wrong shape");
    return;
  }
  for (std::size_t o = 0; o < n; ++o) {
    for (std::size_t d = 0; d < n; ++d) {
      if (std::bit_cast<std::uint64_t>(advertised_.at(o, d)) !=
          std::bit_cast<std::uint64_t>(advertised_T_.at(d, o))) {
        report.fail(prefix(static_cast<LandmarkId>(d)) +
                    "transposed advertised mirror diverges from "
                    "advertised_[" + std::to_string(o) + "][" +
                    std::to_string(d) + "] (" +
                    std::to_string(advertised_.at(o, d)) + " vs " +
                    std::to_string(advertised_T_.at(d, o)) + ")");
      }
    }
  }
  // Correctness: every column *not* marked stale must already equal the
  // from-scratch min-over-neighbors scan, bit for bit.  The reference
  // is always the *scalar* loop, so this doubles as a SIMD-vs-scalar
  // cross-check of whatever path produced the cached routes.
  if (all_dirty_) return;  // every column is legitimately stale
  for (std::size_t d = 0; d < n; ++d) {
    if (column_dirty_[d] != 0) continue;
    const auto dst = static_cast<LandmarkId>(d);
    const Route fresh = compute_column_scalar(dst);
    const Route& cached = routes_[d];
    if (fresh.next != cached.next ||
        std::bit_cast<std::uint64_t>(fresh.delay) !=
            std::bit_cast<std::uint64_t>(cached.delay) ||
        fresh.backup_next != cached.backup_next ||
        std::bit_cast<std::uint64_t>(fresh.backup_delay) !=
            std::bit_cast<std::uint64_t>(cached.backup_delay)) {
      report.fail(prefix(dst) +
                  "clean column disagrees with from-scratch recompute "
                  "(cached next " + std::to_string(cached.next) + ", delay " +
                  std::to_string(cached.delay) + "; fresh next " +
                  std::to_string(fresh.next) + ", delay " +
                  std::to_string(fresh.delay) + ")");
    }
  }
}

void RoutingTable::debug_corrupt_advertised_for_test(LandmarkId origin,
                                                     LandmarkId dst,
                                                     double delay) {
  DTN_ASSERT(origin < link_delay_.size());
  DTN_ASSERT(dst < link_delay_.size());
  advertised_.at(origin, dst) = delay;  // deliberately NOT marked dirty
  advertised_T_.at(dst, origin) = delay;
}

void RoutingTable::debug_corrupt_transposed_for_test(LandmarkId origin,
                                                     LandmarkId dst,
                                                     double delay) {
  DTN_ASSERT(origin < link_delay_.size());
  DTN_ASSERT(dst < link_delay_.size());
  advertised_T_.at(dst, origin) = delay;  // advertised_ left alone
}

namespace {

void write_route(persist::Writer& w, const Route& r) {
  w.u32(r.next);
  w.f64(r.delay);
  w.u32(r.backup_next);
  w.f64(r.backup_delay);
}

void read_route(persist::Reader& r, Route& out) {
  out.next = r.u32();
  out.delay = r.f64();
  out.backup_next = r.u32();
  out.backup_delay = r.f64();
}

}  // namespace

void RoutingTable::save(persist::Writer& w) const {
  const std::size_t n = link_delay_.size();
  w.u32(self_);
  w.u64(n);
  for (const double d : link_delay_) w.f64(d);
  persist::write_matrix(w, advertised_);
  for (const std::uint64_t s : last_seq_) w.u64(s);
  for (const double t : advertised_time_) w.f64(t);
  for (const std::uint8_t e : expired_) w.u8(e);
  for (const std::uint8_t p : pinned_) w.u8(p);
  for (const Route& r : pin_route_) write_route(w, r);
  w.u64(seq_);
  for (const Route& r : routes_) write_route(w, r);
  for (const std::uint8_t d : column_dirty_) w.u8(d);
  w.u64(dirty_columns_.size());
  for (const LandmarkId d : dirty_columns_) w.u32(d);
  w.boolean(all_dirty_);
  w.boolean(dirty_);
}

void RoutingTable::load(persist::Reader& r) {
  const std::size_t n = link_delay_.size();
  if (r.u32() != self_ || r.u64() != n) {
    throw persist::FormatError(
        "checkpoint routing table shape (self, num_landmarks) mismatch");
  }
  for (double& d : link_delay_) d = r.f64();
  persist::read_matrix(r, advertised_);
  if (advertised_.rows() != n || advertised_.cols() != n) {
    throw persist::FormatError(
        "checkpoint routing table advertised matrix shape mismatch");
  }
  for (std::uint64_t& s : last_seq_) s = r.u64();
  for (double& t : advertised_time_) t = r.f64();
  for (std::uint8_t& e : expired_) e = r.u8();
  for (std::uint8_t& p : pinned_) p = r.u8();
  for (Route& rt : pin_route_) read_route(r, rt);
  seq_ = r.u64();
  for (Route& rt : routes_) read_route(r, rt);
  for (std::uint8_t& d : column_dirty_) d = r.u8();
  dirty_columns_.resize(static_cast<std::size_t>(r.u64()));
  for (LandmarkId& d : dirty_columns_) {
    d = r.u32();
    if (d >= n) {
      throw persist::FormatError(
          "checkpoint routing table dirty column out of range");
    }
  }
  all_dirty_ = r.boolean();
  dirty_ = r.boolean();
  // The transposed mirror is derived state and deliberately absent from
  // the image (the byte layout predates it); rebuild it.
  rebuild_transposed();
}

}  // namespace dtn::core
