#include "core/routing_table.hpp"

#include <algorithm>
#include <bit>
#include <string>

#include "persist/flat_io.hpp"
#include "persist/serializer.hpp"
#include "sim/invariant_auditor.hpp"
#include "util/assert.hpp"

namespace dtn::core {

RoutingTable::RoutingTable(LandmarkId self, std::size_t num_landmarks)
    : self_(self),
      link_delay_(num_landmarks, kInfiniteDelay),
      advertised_(num_landmarks, num_landmarks, kInfiniteDelay),
      last_seq_(num_landmarks, 0),
      advertised_time_(num_landmarks, 0.0),
      expired_(num_landmarks, 0),
      pinned_(num_landmarks, 0),
      pin_route_(num_landmarks),
      routes_(num_landmarks),
      column_dirty_(num_landmarks, 0) {
  DTN_ASSERT(self < num_landmarks);
  // A neighbor always advertises delay 0 to itself even before we have
  // merged anything from it (direct links are usable immediately).
  for (std::size_t v = 0; v < num_landmarks; ++v) {
    advertised_.at(v, v) = 0.0;
  }
}

void RoutingTable::mark_dirty(LandmarkId dst) {
  dirty_ = true;
  if (all_dirty_ || column_dirty_[dst] != 0) return;
  column_dirty_[dst] = 1;
  dirty_columns_.push_back(dst);
}

void RoutingTable::mark_all_dirty() {
  dirty_ = true;
  all_dirty_ = true;
}

void RoutingTable::set_link_delay(LandmarkId neighbor, double delay) {
  DTN_ASSERT(neighbor < link_delay_.size());
  DTN_ASSERT(neighbor != self_);
  DTN_ASSERT(delay >= 0.0);
  if (link_delay_[neighbor] != delay) {
    link_delay_[neighbor] = delay;
    // A changed link cost touches every destination routed (or now
    // routable) through `neighbor`, which can be any column.
    mark_all_dirty();
  }
}

double RoutingTable::link_delay(LandmarkId neighbor) const {
  DTN_ASSERT(neighbor < link_delay_.size());
  return link_delay_[neighbor];
}

bool RoutingTable::merge(const DistanceVector& dv, double now) {
  DTN_ASSERT(dv.origin < link_delay_.size());
  DTN_ASSERT(dv.delay.size() == link_delay_.size());
  if (dv.origin == self_) return false;
  if (dv.seq + 1 <= last_seq_[dv.origin]) return false;  // stale
  last_seq_[dv.origin] = dv.seq + 1;
  advertised_time_[dv.origin] = now;
  expired_[dv.origin] = 0;  // a fresh vector revives a withdrawn origin
  for (std::size_t d = 0; d < dv.delay.size(); ++d) {
    // A neighbor advertises delay 0 to itself regardless of payload.
    const double incoming = d == dv.origin ? 0.0 : dv.delay[d];
    double& cell = advertised_.at(dv.origin, d);
    if (cell != incoming) {
      cell = incoming;
      mark_dirty(static_cast<LandmarkId>(d));
    }
  }
  return true;
}

Route RoutingTable::compute_column(LandmarkId dst) const {
  if (dst == self_) {
    Route r;
    r.next = self_;
    r.delay = 0.0;
    return r;
  }
  const std::size_t n = link_delay_.size();
  Route r;
  for (std::size_t v = 0; v < n; ++v) {
    if (v == self_) continue;
    const double ld = link_delay_[v];
    if (ld == kInfiniteDelay) continue;
    const double adv = advertised_.at(v, dst);
    if (adv == kInfiniteDelay) continue;
    const double cost = ld + adv;
    if (cost < r.delay) {
      r.backup_next = r.next;
      r.backup_delay = r.delay;
      r.next = static_cast<LandmarkId>(v);
      r.delay = cost;
    } else if (cost < r.backup_delay) {
      r.backup_next = static_cast<LandmarkId>(v);
      r.backup_delay = cost;
    }
  }
  if (pinned_[dst] != 0) {
    // The pinned (injected) route replaces the best; the organically
    // computed best becomes the backup so load balancing still works.
    Route pr = pin_route_[dst];
    pr.backup_next = r.next;
    pr.backup_delay = r.delay;
    return pr;
  }
  return r;
}

void RoutingTable::recompute_column(LandmarkId dst) const {
  routes_[dst] = compute_column(dst);
}

void RoutingTable::recompute() const {
  if (!dirty_) return;
  if (all_dirty_) {
    const std::size_t n = link_delay_.size();
    for (std::size_t d = 0; d < n; ++d) {
      recompute_column(static_cast<LandmarkId>(d));
    }
    all_dirty_ = false;
  } else {
    for (const LandmarkId d : dirty_columns_) {
      recompute_column(d);
    }
  }
  for (const LandmarkId d : dirty_columns_) column_dirty_[d] = 0;
  dirty_columns_.clear();
  dirty_ = false;
}

Route RoutingTable::route(LandmarkId dst) const {
  DTN_ASSERT(dst < link_delay_.size());
  recompute();
  return routes_[dst];
}

double RoutingTable::delay_to(LandmarkId dst) const { return route(dst).delay; }

DistanceVector RoutingTable::snapshot() {
  recompute();
  DistanceVector dv;
  dv.origin = self_;
  dv.seq = seq_++;
  dv.delay.resize(link_delay_.size());
  for (std::size_t d = 0; d < dv.delay.size(); ++d) {
    dv.delay[d] = routes_[d].delay;
  }
  dv.delay[self_] = 0.0;
  return dv;
}

double RoutingTable::coverage() const {
  recompute();
  const std::size_t n = link_delay_.size();
  if (n <= 1) return 1.0;
  std::size_t reachable = 0;
  for (std::size_t d = 0; d < n; ++d) {
    if (d == self_) continue;
    if (routes_[d].reachable() && routes_[d].delay != kInfiniteDelay) {
      ++reachable;
    }
  }
  return static_cast<double>(reachable) / static_cast<double>(n - 1);
}

std::vector<LandmarkId> RoutingTable::next_hops() const {
  recompute();
  std::vector<LandmarkId> out(link_delay_.size(), kNoLandmark);
  for (std::size_t d = 0; d < out.size(); ++d) {
    out[d] = routes_[d].next;
  }
  return out;
}

std::size_t RoutingTable::expire_stale(double cutoff) {
  const std::size_t n = link_delay_.size();
  std::size_t expired = 0;
  for (std::size_t o = 0; o < n; ++o) {
    if (o == self_) continue;
    if (last_seq_[o] == 0) continue;  // never advertised: bootstrap row stays
    if (expired_[o] != 0) continue;
    if (advertised_time_[o] >= cutoff) continue;
    for (std::size_t d = 0; d < n; ++d) {
      advertised_.at(o, d) = kInfiniteDelay;
    }
    expired_[o] = 1;
    ++expired;
  }
  // A withdrawn origin can have been the best hop toward any column.
  if (expired != 0) mark_all_dirty();
  return expired;
}

bool RoutingTable::origin_expired(LandmarkId origin) const {
  DTN_ASSERT(origin < link_delay_.size());
  return expired_[origin] != 0;
}

double RoutingTable::advertised_time(LandmarkId origin) const {
  DTN_ASSERT(origin < link_delay_.size());
  return advertised_time_[origin];
}

void RoutingTable::pin(LandmarkId dst, LandmarkId next, double fake_delay) {
  DTN_ASSERT(dst < link_delay_.size());
  DTN_ASSERT(next < link_delay_.size());
  DTN_ASSERT(dst != self_);
  pinned_[dst] = 1;
  Route r;
  r.next = next;
  r.delay = fake_delay;
  pin_route_[dst] = r;
  mark_dirty(dst);
}

void RoutingTable::unpin(LandmarkId dst) {
  DTN_ASSERT(dst < link_delay_.size());
  if (pinned_[dst] != 0) {
    pinned_[dst] = 0;
    mark_dirty(dst);
  }
}

bool RoutingTable::is_pinned(LandmarkId dst) const {
  DTN_ASSERT(dst < link_delay_.size());
  return pinned_[dst] != 0;
}

void RoutingTable::audit(sim::AuditReport& report) const {
  const std::size_t n = link_delay_.size();
  const auto prefix = [this](LandmarkId dst) {
    return "table " + std::to_string(self_) + ", destination " +
           std::to_string(dst) + ": ";
  };
  // Bookkeeping: the compact dirty list and the dense flag array must
  // describe the same set, and a clean table must have an empty set.
  std::size_t flagged = 0;
  for (std::size_t d = 0; d < n; ++d) {
    if (column_dirty_[d] != 0) ++flagged;
  }
  std::vector<std::uint8_t> listed(n, 0);
  for (const LandmarkId d : dirty_columns_) {
    if (d >= n) {
      report.fail("dirty list names an out-of-range column");
      continue;
    }
    if (listed[d] != 0) {
      report.fail(prefix(d) + "column listed dirty twice");
    }
    listed[d] = 1;
    if (column_dirty_[d] == 0) {
      report.fail(prefix(d) + "column in the dirty list but not flagged");
    }
  }
  if (flagged != dirty_columns_.size()) {
    report.fail("dirty flag count (" + std::to_string(flagged) +
                ") disagrees with the dirty list (" +
                std::to_string(dirty_columns_.size()) + " entries)");
  }
  if (!dirty_ && (all_dirty_ || !dirty_columns_.empty())) {
    report.fail("table claims clean while columns are marked dirty");
  }
  if (all_dirty_ && !dirty_) {
    report.fail("all_dirty_ set on a clean table");
  }
  // Correctness: every column *not* marked stale must already equal the
  // from-scratch min-over-neighbors scan, bit for bit.
  if (all_dirty_) return;  // every column is legitimately stale
  for (std::size_t d = 0; d < n; ++d) {
    if (column_dirty_[d] != 0) continue;
    const auto dst = static_cast<LandmarkId>(d);
    const Route fresh = compute_column(dst);
    const Route& cached = routes_[d];
    if (fresh.next != cached.next ||
        std::bit_cast<std::uint64_t>(fresh.delay) !=
            std::bit_cast<std::uint64_t>(cached.delay) ||
        fresh.backup_next != cached.backup_next ||
        std::bit_cast<std::uint64_t>(fresh.backup_delay) !=
            std::bit_cast<std::uint64_t>(cached.backup_delay)) {
      report.fail(prefix(dst) +
                  "clean column disagrees with from-scratch recompute "
                  "(cached next " + std::to_string(cached.next) + ", delay " +
                  std::to_string(cached.delay) + "; fresh next " +
                  std::to_string(fresh.next) + ", delay " +
                  std::to_string(fresh.delay) + ")");
    }
  }
}

void RoutingTable::debug_corrupt_advertised_for_test(LandmarkId origin,
                                                     LandmarkId dst,
                                                     double delay) {
  DTN_ASSERT(origin < link_delay_.size());
  DTN_ASSERT(dst < link_delay_.size());
  advertised_.at(origin, dst) = delay;  // deliberately NOT marked dirty
}

namespace {

void write_route(persist::Writer& w, const Route& r) {
  w.u32(r.next);
  w.f64(r.delay);
  w.u32(r.backup_next);
  w.f64(r.backup_delay);
}

void read_route(persist::Reader& r, Route& out) {
  out.next = r.u32();
  out.delay = r.f64();
  out.backup_next = r.u32();
  out.backup_delay = r.f64();
}

}  // namespace

void RoutingTable::save(persist::Writer& w) const {
  const std::size_t n = link_delay_.size();
  w.u32(self_);
  w.u64(n);
  for (const double d : link_delay_) w.f64(d);
  persist::write_matrix(w, advertised_);
  for (const std::uint64_t s : last_seq_) w.u64(s);
  for (const double t : advertised_time_) w.f64(t);
  for (const std::uint8_t e : expired_) w.u8(e);
  for (const std::uint8_t p : pinned_) w.u8(p);
  for (const Route& r : pin_route_) write_route(w, r);
  w.u64(seq_);
  for (const Route& r : routes_) write_route(w, r);
  for (const std::uint8_t d : column_dirty_) w.u8(d);
  w.u64(dirty_columns_.size());
  for (const LandmarkId d : dirty_columns_) w.u32(d);
  w.boolean(all_dirty_);
  w.boolean(dirty_);
}

void RoutingTable::load(persist::Reader& r) {
  const std::size_t n = link_delay_.size();
  if (r.u32() != self_ || r.u64() != n) {
    throw persist::FormatError(
        "checkpoint routing table shape (self, num_landmarks) mismatch");
  }
  for (double& d : link_delay_) d = r.f64();
  persist::read_matrix(r, advertised_);
  if (advertised_.rows() != n || advertised_.cols() != n) {
    throw persist::FormatError(
        "checkpoint routing table advertised matrix shape mismatch");
  }
  for (std::uint64_t& s : last_seq_) s = r.u64();
  for (double& t : advertised_time_) t = r.f64();
  for (std::uint8_t& e : expired_) e = r.u8();
  for (std::uint8_t& p : pinned_) p = r.u8();
  for (Route& rt : pin_route_) read_route(r, rt);
  seq_ = r.u64();
  for (Route& rt : routes_) read_route(r, rt);
  for (std::uint8_t& d : column_dirty_) d = r.u8();
  dirty_columns_.resize(static_cast<std::size_t>(r.u64()));
  for (LandmarkId& d : dirty_columns_) {
    d = r.u32();
    if (d >= n) {
      throw persist::FormatError(
          "checkpoint routing table dirty column out of range");
    }
  }
  all_dirty_ = r.boolean();
  dirty_ = r.boolean();
}

}  // namespace dtn::core
