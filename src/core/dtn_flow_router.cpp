#include "core/dtn_flow_router.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <string>

#include "persist/flat_io.hpp"
#include "persist/serializer.hpp"
#include "sim/invariant_auditor.hpp"

#include "util/logging.hpp"
#include "util/simd.hpp"

namespace dtn::core {

using net::LandmarkId;
using net::Network;
using net::NodeId;
using net::Packet;
using net::PacketId;

namespace {
// Minimum raw transit probability for a node that is *not* predicted to
// head to the next hop to still be usable as its carrier.
constexpr double kCarrierProbabilityFloor = 0.30;
}  // namespace

DtnFlowRouter::DtnFlowRouter(DtnFlowConfig config) : cfg_(config) {
  DTN_ASSERT(cfg_.predictor_order >= 1 && cfg_.predictor_order <= 3);
  DTN_ASSERT(cfg_.bandwidth_rho > 0.0 && cfg_.bandwidth_rho <= 1.0);
  DTN_ASSERT(cfg_.dead_end_theta >= 1.0);
  DTN_ASSERT(cfg_.overload_lambda >= 1.0);
  DTN_ASSERT(cfg_.dv_exchange_every >= 1);
  DTN_ASSERT(cfg_.route_staleness_units >= 0.0);
}

void DtnFlowRouter::on_init(Network& net) {
  const std::size_t n = net.num_nodes();
  const std::size_t m = net.num_landmarks();
  time_unit_ = net.config().time_unit;
  bw_ = BandwidthEstimator(m, cfg_.bandwidth_rho);
  if (cfg_.distributed_bandwidth) {
    dbw_.emplace(m, cfg_.bandwidth_rho);
  } else {
    dbw_.reset();
  }
  nodes_.assign(n, NodeState{});
  landmarks_.assign(m, LandmarkState{});
  for (NodeId i = 0; i < n; ++i) {
    nodes_[i].predictor.emplace(m, cfg_.predictor_order);
    nodes_[i].stay_sum.assign(m, 0.0);
    nodes_[i].stay_count.assign(m, 0);
    nodes_[i].departures_since_dv.assign(m, 0);
  }
  for (LandmarkId l = 0; l < m; ++l) {
    landmarks_[l].table.emplace(l, m);
    landmarks_[l].incoming.assign(m, 0.0);
    landmarks_[l].outgoing.assign(m, 0.0);
    landmarks_[l].prev_incoming.assign(m, 0.0);
    landmarks_[l].prev_outgoing.assign(m, 0.0);
    landmarks_[l].divert_toggle.assign(m, 0);
    landmarks_[l].present_epoch = 1;
    landmarks_[l].carrier_cache.assign(m, {});
  }
  for (auto& scratch : scratch_slots_) scratch.clear();
  ensure_arenas(arena_slots_.empty() ? 1 : arena_slots_.size());
  station_down_.assign(m, 0);
  needs_reconvergence_.assign(m, 0);
  accuracy_ = FlatMatrix<double>(n, m, cfg_.accuracy_init);
  for (auto& slot : diag_slots_) slot = DtnFlowDiagnostics{};
}

void DtnFlowRouter::ensure_arenas(std::size_t n) {
  DTN_ASSERT(n >= 1);
  while (arena_slots_.size() < n) {
    arena_slots_.push_back(std::make_unique<Arena>());
  }
  arena_slots_.resize(n);
  for (auto& a : arena_slots_) a->reset();
  // The other per-shard slot set sized alongside the arenas: prepaid
  // present-epoch balances for batched departures (zero outside a
  // batch, see on_departure_batch_begin).
  epoch_prepaid_.assign(n, 0);
}

DtnFlowDiagnostics DtnFlowRouter::diagnostics() const {
  DtnFlowDiagnostics total;
  for (const DtnFlowDiagnostics& d : diag_slots_) {
    total.transits_observed += d.transits_observed;
    total.predictions_scored += d.predictions_scored;
    total.predictions_correct += d.predictions_correct;
    total.dead_ends_detected += d.dead_ends_detected;
    total.loops_detected += d.loops_detected;
    total.loops_corrected += d.loops_corrected;
    total.balancing_diversions += d.balancing_diversions;
    total.station_outages_seen += d.station_outages_seen;
    total.station_recoveries_seen += d.station_recoveries_seen;
    total.dv_carriers_lost += d.dv_carriers_lost;
    total.dv_deliveries_deferred += d.dv_deliveries_deferred;
    total.stale_origins_expired += d.stale_origins_expired;
    total.fallback_next_hops += d.fallback_next_hops;
    total.post_outage_reconvergences += d.post_outage_reconvergences;
  }
  return total;
}

const RoutingTable& DtnFlowRouter::routing_table(LandmarkId l) const {
  DTN_ASSERT(l < landmarks_.size());
  return *landmarks_[l].table;
}

RoutingTable& DtnFlowRouter::mutable_routing_table(LandmarkId l) {
  DTN_ASSERT(l < landmarks_.size());
  return *landmarks_[l].table;
}

const MarkovPredictor& DtnFlowRouter::predictor(NodeId n) const {
  DTN_ASSERT(n < nodes_.size());
  return *nodes_[n].predictor;
}

double DtnFlowRouter::accuracy(NodeId n, LandmarkId l) const {
  return accuracy_.at(n, l);
}

void DtnFlowRouter::audit(const net::Network& net,
                          sim::AuditReport& report) const {
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const NodeState& ns = nodes_[n];
    if (!ns.predictor.has_value()) continue;
    report.set_context("router.predictor[" + std::to_string(n) + "]");
    ns.predictor->audit(report);
  }
  for (std::size_t l = 0; l < landmarks_.size(); ++l) {
    const LandmarkState& ls = landmarks_[l];
    if (ls.table.has_value()) {
      report.set_context("router.routing_table[" + std::to_string(l) + "]");
      ls.table->audit(report);
    }
    // Carrier-cache epoch discipline: an entry may only be *valid*
    // (epoch equal) or *stale* (epoch behind); a valid entry must mirror
    // the present set and the per-node probabilities bit for bit, since
    // every input of a score bumps present_epoch when it changes.
    report.set_context("router.carrier_cache[" + std::to_string(l) + "]");
    const auto present = net.nodes_at(static_cast<net::LandmarkId>(l));
    for (std::size_t to = 0; to < ls.carrier_cache.size(); ++to) {
      const CarrierScores& entry = ls.carrier_cache[to];
      if (entry.epoch > ls.present_epoch) {
        report.fail("target " + std::to_string(to) + ": cache epoch " +
                    std::to_string(entry.epoch) +
                    " is ahead of the present epoch " +
                    std::to_string(ls.present_epoch));
        continue;
      }
      if (entry.epoch != ls.present_epoch) continue;  // legitimately stale
      // The SoA columns must stay the same length as each other and as
      // the present set (a column updated without its siblings is the
      // mirror-desync bug class).
      if (entry.node.size() != present.size() ||
          entry.overall.size() != entry.node.size() ||
          entry.raw.size() != entry.node.size() ||
          entry.predicted_to.size() != entry.node.size()) {
        report.fail("target " + std::to_string(to) +
                    ": valid cache columns (node " +
                    std::to_string(entry.node.size()) + ", overall " +
                    std::to_string(entry.overall.size()) + ", raw " +
                    std::to_string(entry.raw.size()) + ", predicted_to " +
                    std::to_string(entry.predicted_to.size()) +
                    ") disagree with " + std::to_string(present.size()) +
                    " present nodes");
        continue;
      }
      for (std::size_t i = 0; i < present.size(); ++i) {
        const NodeId n = present[i];
        const NodeState& ns = nodes_[n];
        double raw = 0.0;
        double overall = 0.0;
        bool predicted_to = false;
        // Mirror carrier_scores exactly (scalar — doubles as a
        // SIMD-vs-scalar cross-check of the fused refinement sweep): a
        // crashed node scores zero.
        if (!net.node_down(n)) {
          raw = ns.predictor->probability_of(static_cast<LandmarkId>(to));
          overall = raw;
          if (raw > 0.0 && cfg_.refine_carrier_selection) {
            overall = raw * accuracy_.at(n, static_cast<LandmarkId>(l));
          } else if (raw <= 0.0) {
            overall = 0.0;
          }
          predicted_to = ns.predicted_next == static_cast<LandmarkId>(to);
        }
        if (entry.node[i] != n ||
            std::bit_cast<std::uint64_t>(entry.raw[i]) !=
                std::bit_cast<std::uint64_t>(raw) ||
            std::bit_cast<std::uint64_t>(entry.overall[i]) !=
                std::bit_cast<std::uint64_t>(overall) ||
            (entry.predicted_to[i] != 0) != predicted_to) {
          report.fail("target " + std::to_string(to) + ", slot " +
                      std::to_string(i) + ": valid cached score (node " +
                      std::to_string(entry.node[i]) + ", overall " +
                      std::to_string(entry.overall[i]) +
                      ") disagrees with recomputation (node " +
                      std::to_string(n) + ", overall " +
                      std::to_string(overall) + ")");
        }
      }
    }
  }
  // Scratch-arena byte accounting (util/arena.hpp): the incremental
  // counter must agree with the per-block sums in every shard slot.
  report.set_context("router.scratch_arena");
  for (std::size_t s = 0; s < arena_slots_.size(); ++s) {
    std::string why;
    if (!arena_slots_[s]->check(&why)) {
      report.fail("shard " + std::to_string(s) + ": " + why);
    }
  }
  // Audits run at event boundaries, where every departure batch has
  // consumed its prepaid epoch advances in full.
  report.set_context("router.batch_epoch");
  for (std::size_t s = 0; s < epoch_prepaid_.size(); ++s) {
    if (epoch_prepaid_[s] != 0) {
      report.fail("shard " + std::to_string(s) + ": prepaid epoch balance " +
                  std::to_string(epoch_prepaid_[s]) +
                  " left over after a departure batch");
    }
  }
  // The outage mirror (read by choose_next_hop, which has no Network
  // access) must agree with the injector's ground truth.
  report.set_context("router.fault_mirror");
  for (std::size_t l = 0; l < station_down_.size(); ++l) {
    const bool mine = station_down_[l] != 0;
    const bool truth = net.station_down(static_cast<net::LandmarkId>(l));
    if (mine != truth) {
      report.fail("station " + std::to_string(l) + ": router mirror says " +
                  (mine ? "down" : "up") + " but the injector says " +
                  (truth ? "down" : "up"));
    }
  }
}

double DtnFlowRouter::overall_transit_probability(const Network& net, NodeId n,
                                                  LandmarkId to) const {
  const NodeState& ns = nodes_[n];
  const double p = ns.predictor->probability_of(to);
  if (p <= 0.0) return 0.0;
  if (!cfg_.refine_carrier_selection) return p;
  const LandmarkId here = net.location(n);
  if (here == kNoLandmark) return p;
  return p * accuracy_.at(n, here);
}


const DtnFlowRouter::CarrierScores& DtnFlowRouter::carrier_scores(
    const Network& net, LandmarkId l, LandmarkId to) {
  // Split so the dominant cache-hit path (two indexed loads + an epoch
  // compare, once per packet) inlines into the dispatch scans while
  // the rebuild below stays out of line.
  LandmarkState& ls = landmarks_[l];
  CarrierScores& entry = ls.carrier_cache[to];
  if (entry.epoch == ls.present_epoch) [[likely]] return entry;
  return rebuild_carrier_scores(net, ls, entry, l, to);
}

const DtnFlowRouter::CarrierScores& DtnFlowRouter::rebuild_carrier_scores(
    const Network& net, LandmarkState& ls, CarrierScores& entry, LandmarkId l,
    LandmarkId to) {
  entry.epoch = ls.present_epoch;
  const auto present = net.nodes_at(l);
  const std::size_t k = present.size();
  entry.node.assign(present.begin(), present.end());
  entry.raw.resize(k);
  entry.overall.resize(k);
  entry.predicted_to.resize(k);
  // Gather pass (necessarily scalar: every present node reads its own
  // predictor and accuracy cell).  The overall column temporarily holds
  // the per-node accuracy factor; the fused sweep below turns it into
  // the ranking key in place.
  for (std::size_t i = 0; i < k; ++i) {
    const NodeId n = present[i];
    // A crashed node is no carrier at all; Network bumps the present
    // epoch through the crash/reboot hooks, so the zero score is
    // invalidated the instant the radio comes back.
    if (net.node_down(n)) {
      entry.raw[i] = 0.0;
      entry.overall[i] = 1.0;  // dead lane: zeroed by the raw<=0 select
      entry.predicted_to[i] = 0;
      continue;
    }
    const NodeState& ns = nodes_[n];
    entry.raw[i] = ns.predictor->probability_of(to);
    entry.overall[i] = accuracy_.at(n, l);
    entry.predicted_to[i] = ns.predicted_next == to ? 1 : 0;
  }
  // Fused refinement sweep over the packed columns:
  //   overall[i] = raw[i] > 0 ? (refine ? raw[i] * acc[i] : raw[i]) : 0
  // — identical arithmetic to overall_transit_probability (a present
  // node's location is l), so cached scores compare bit-identically.
  // The vector path uses only per-lane multiply/compare/select, which
  // are IEEE-identical to the scalar statement (docs/simd-hot-path.md).
  const bool refine = cfg_.refine_carrier_selection;
  double* overall = entry.overall.data();
  const double* raw = entry.raw.data();
  std::size_t i = 0;
#if defined(__GNUC__) && !defined(DTN_SIMD_SCALAR)
  if (simd::kEnabled && !simd::scalar_forced()) {
    const simd::VDouble zero = simd::broadcast(0.0);
    for (; i + simd::kDoubleLanes <= k; i += simd::kDoubleLanes) {
      const simd::VDouble r = simd::loadu(raw + i);
      const simd::VDouble a = simd::loadu(overall + i);
      const simd::VDouble refined = refine ? r * a : r;
      simd::storeu(overall + i, simd::vselect(r > zero, refined, zero));
    }
  }
#endif
  for (; i < k; ++i) {
    overall[i] = raw[i] > 0.0 ? (refine ? raw[i] * overall[i] : raw[i]) : 0.0;
  }
  return entry;
}

bool DtnFlowRouter::debug_corrupt_carrier_cache_for_test(LandmarkId l,
                                                         LandmarkId to) {
  DTN_ASSERT(l < landmarks_.size());
  LandmarkState& ls = landmarks_[l];
  CarrierScores& entry = ls.carrier_cache[to];
  if (entry.epoch != ls.present_epoch || entry.overall.empty()) return false;
  entry.overall[0] += 0.125;  // desync one column from its siblings
  return true;
}

double DtnFlowRouter::link_expected_delay(LandmarkId from,
                                          LandmarkId to) const {
  if (dbw_.has_value()) return dbw_->expected_delay(from, to, time_unit_);
  return bw_.expected_delay(from, to, time_unit_);
}

bool DtnFlowRouter::link_overloaded(const LandmarkState& ls,
                                    LandmarkId neighbor) const {
  // The previous unit's outgoing rate is the link's demonstrated
  // capacity; the *running* incoming count of the current unit is the
  // demand so far.  Only once demand has already exceeded lambda x
  // capacity within this unit is the link overloaded — the first
  // capacity-worth of packets each unit always uses the primary route.
  const double out = std::max(ls.prev_outgoing[neighbor], 1.0);
  return ls.incoming[neighbor] > cfg_.overload_lambda * out;
}

bool DtnFlowRouter::choose_next_hop(LandmarkId l, LandmarkId dst,
                                    LandmarkId& next, double& delay) {
  LandmarkState& ls = landmarks_[l];
  const Route r = ls.table->route(dst);
  if (!r.reachable() || r.delay == kInfiniteDelay) return false;
  next = r.next;
  delay = r.delay;
  // Graceful degradation: the primary next hop's station is in an
  // injected outage.  Fall back to the backup route when it is alive
  // and finite rather than parking traffic on a dead relay; the
  // fallback skips load balancing (there is no second alternative left
  // to divert to).
  if (station_down_[next] != 0) {
    if (r.backup_next == kNoLandmark || r.backup_delay == kInfiniteDelay ||
        station_down_[r.backup_next] != 0) {
      return false;
    }
    next = r.backup_next;
    delay = r.backup_delay;
    ++diag().fallback_next_hops;
    return true;
  }
  // Load balancing (§IV-E.3): when the link's incoming rate exceeds
  // lambda x its outgoing rate, offload the *excess* to the backup next
  // hop.  Diverting everything would just overload the (usually slower)
  // backup, so packets alternate between the two routes while the
  // overload lasts, and only when the backup is not drastically worse.
  if (cfg_.load_balancing && r.backup_next != kNoLandmark &&
      r.backup_delay != kInfiniteDelay &&
      r.backup_delay <= 3.0 * r.delay && link_overloaded(ls, r.next) &&
      !link_overloaded(ls, r.backup_next)) {
    if (++ls.divert_toggle[r.next] % 2 == 1) {
      next = r.backup_next;
      delay = r.backup_delay;
      ++diag().balancing_diversions;
      // The diverted demand now loads the backup link; recording it
      // keeps the backup's own overload check honest, which caps the
      // diverted volume at the backup's demonstrated capacity.
      ls.incoming[r.backup_next] += 1.0;
    }
  }
  return true;
}

void DtnFlowRouter::note_station_ingress(Network& net, LandmarkId l,
                                         PacketId pid) {
  // Load-balancing incoming-rate monitor: which link would this packet
  // take out of l (pre-diversion best route)?
  const Packet& p = net.packet(pid);
  const Route r = landmarks_[l].table->route(p.dst);
  if (r.reachable() && r.delay != kInfiniteDelay) {
    landmarks_[l].incoming[r.next] += 1.0;
  }
}

void DtnFlowRouter::on_packet_generated(Network& net, PacketId pid) {
  arena().reset();  // top-level hook entry (util/arena.hpp lifetime rule)
  const Packet& p = net.packet(pid);
  DTN_ASSERT(p.state == net::PacketState::kAtStation);
  note_station_ingress(net, p.src, pid);
  dispatch_packet(net, p.src, pid);
}

bool DtnFlowRouter::dispatch_packet(Network& net, LandmarkId l, PacketId pid) {
  // A station in an outage forwards nothing; its storage is a frozen
  // durable queue until recovery.
  if (station_down_[l] != 0) return false;
  Packet& p = net.packet(pid);
  DTN_ASSERT(p.state == net::PacketState::kAtStation && p.holder == l);
  // A node-addressed packet that has reached its target landmark waits
  // at the station for the destination node to show up (§IV-E.4).
  if (p.dst == l && p.dst_node != trace::kNoNode) return false;
  const auto present = net.nodes_at(l);
  if (present.empty()) return false;

  // Step 2: direct-delivery opportunity — a connected node predicted to
  // transit straight to the destination landmark.
  if (cfg_.direct_delivery) {
    NodeId best = trace::kNoNode;
    double best_p = 0.0;
    const CarrierScores& cs = carrier_scores(net, l, p.dst);
    for (std::size_t i = 0; i < cs.size(); ++i) {
      if (cs.predicted_to[i] == 0) continue;
      if (!net.node_buffer(cs.node[i]).has_space(p.size_kb)) continue;
      if (cs.overall[i] > best_p) {
        best_p = cs.overall[i];
        best = cs.node[i];
      }
    }
    if (best != trace::kNoNode) {
      const double table_delay = landmarks_[l].table->delay_to(p.dst);
      const double link_delay = link_expected_delay(l, p.dst);
      if (net.station_to_node(l, best, pid)) {
        p.next_hop = p.dst;
        p.expected_delay = std::min(table_delay, link_delay);
        landmarks_[l].outgoing[p.dst] += 1.0;
        return true;
      }
    }
  }

  // Step 3/4: routing table lookup, then the carrier with the highest
  // overall probability of transiting to the chosen next hop.
  LandmarkId next = kNoLandmark;
  double delay = kInfiniteDelay;
  if (!choose_next_hop(l, p.dst, next, delay)) return false;

  NodeId best = trace::kNoNode;
  double best_p = 0.0;
  const CarrierScores& cs = carrier_scores(net, l, next);
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (!net.node_buffer(cs.node[i]).has_space(p.size_kb)) continue;
    // Only plausible carriers qualify: handing packets to visitors with
    // a token transit probability toward the next hop just bounces them
    // between stations and wandering nodes.
    if (cs.predicted_to[i] == 0 && cs.raw[i] < kCarrierProbabilityFloor) {
      continue;
    }
    if (cs.overall[i] > best_p) {
      best_p = cs.overall[i];
      best = cs.node[i];
    }
  }
  if (best == trace::kNoNode) return false;
  if (!net.station_to_node(l, best, pid)) return false;
  p.next_hop = next;
  p.expected_delay = delay;
  landmarks_[l].outgoing[next] += 1.0;
  return true;
}

void DtnFlowRouter::offer_packets_to_node(Network& net, LandmarkId l,
                                          NodeId n) {
  const auto span = net.station_packets(l);
  if (span.empty()) return;
  // Hook-local scratch (queue snapshot, delay column, sort order) lives
  // in the shard's arena: reclaimed wholesale when the enclosing
  // top-level hook resets it, zero steady-state heap traffic.
  ArenaVector<PacketId> queue(span.begin(), span.end(),
                              ArenaAllocator<PacketId>(arena()));
  const double now = net.now();
  // One conditional-distribution fill covers every packet of the offer:
  // the loop below reads P(next-hop | n's context) per packet, and n's
  // prediction state cannot change mid-offer.  The scratch buffer keeps
  // the fill allocation-free.
  nodes_[n].predictor->next_distribution(distribution_scratch());
  const double acc_here = cfg_.refine_carrier_selection
                              ? accuracy_.at(n, l)
                              : 1.0;
  // §IV-D.5 forwarding priority: packets whose expected delay fits the
  // remaining TTL first, by smallest remaining TTL.  Both sort keys are
  // precomputed into packed columns: the comparator then reads two
  // doubles and a flag instead of chasing the packet store per
  // comparison.  The comparator's decisions are unchanged, so the
  // resulting permutation is bit-identical to the old in-comparator
  // recomputation.
  ArenaVector<double> route_delay(queue.size(),
                                  ArenaAllocator<double>(arena()));
  ArenaVector<double> ttl_left(queue.size(), ArenaAllocator<double>(arena()));
  ArenaVector<std::uint8_t> eligible(queue.size(),
                                     ArenaAllocator<std::uint8_t>(arena()));
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const Packet& p = net.packet(queue[i]);
    route_delay[i] = landmarks_[l].table->delay_to(p.dst);
    ttl_left[i] = p.remaining_ttl(now);
    eligible[i] = route_delay[i] <= ttl_left[i] ? 1 : 0;
  }
  ArenaVector<std::size_t> order(queue.size(),
                                 ArenaAllocator<std::size_t>(arena()));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (eligible[a] != eligible[b]) return eligible[a] != 0;
    return ttl_left[a] < ttl_left[b];
  });

  std::size_t handed = 0;
  for (const std::size_t i : order) {
    if (cfg_.max_downloads_per_arrival != 0 &&
        handed >= cfg_.max_downloads_per_arrival) {
      break;
    }
    const PacketId pid = queue[i];
    Packet& p = net.packet(pid);
    if (p.state != net::PacketState::kAtStation) continue;  // moved already
    if (p.dst == l && p.dst_node != trace::kNoNode) continue;  // waiting here
    if (!net.node_buffer(n).has_space(p.size_kb)) break;

    if (cfg_.direct_delivery && nodes_[n].predicted_next == p.dst) {
      const double table_delay = landmarks_[l].table->delay_to(p.dst);
      const double link_delay = link_expected_delay(l, p.dst);
      if (net.station_to_node(l, n, pid)) {
        p.next_hop = p.dst;
        p.expected_delay = std::min(table_delay, link_delay);
        landmarks_[l].outgoing[p.dst] += 1.0;
        ++handed;
      }
      continue;
    }

    LandmarkId next = kNoLandmark;
    double delay = kInfiniteDelay;
    if (!choose_next_hop(l, p.dst, next, delay)) continue;
    const double raw = distribution_scratch()[next];
    if (nodes_[n].predicted_next != next && raw < kCarrierProbabilityFloor) {
      continue;
    }
    if (raw <= 0.0 || raw * acc_here <= 0.0) continue;
    if (net.station_to_node(l, n, pid)) {
      p.next_hop = next;
      p.expected_delay = delay;
      landmarks_[l].outgoing[next] += 1.0;
      ++handed;
    }
  }
}

ArenaVector<PacketId> DtnFlowRouter::upload_packets(Network& net, NodeId n,
                                                    LandmarkId l,
                                                    bool force_all,
                                                    std::size_t max_count,
                                                    bool only_reached_hop) {
  ArenaVector<PacketId> uploaded{ArenaAllocator<PacketId>(arena())};
  const auto carried = net.node_packets(n);
  ArenaVector<PacketId> to_check(carried.begin(), carried.end(),
                                 ArenaAllocator<PacketId>(arena()));
  // Most-urgent-first upload order (§IV-D.5): smallest remaining TTL.
  // The key is precomputed per packet; sorting (key, pid) pairs makes
  // the same comparator decisions as the old by-pid sort with
  // in-comparator TTL recomputation, so the order is bit-identical.
  // Keys are computed as a gather of deadlines followed by a blockwise
  // `deadline - now`: the per-lane IEEE subtraction is the exact
  // operation remaining_ttl(now) performs, so key values — and the
  // sort order they induce — are unchanged.
  const double now = net.now();
  const std::size_t m = to_check.size();
  ArenaVector<double> ttl_keys{ArenaAllocator<double>(arena())};
  ttl_keys.resize(m);
  for (std::size_t k = 0; k < m; ++k) {
    ttl_keys[k] = net.packet(to_check[k]).deadline();
  }
  std::size_t k = 0;
#if defined(__GNUC__) && !defined(DTN_SIMD_SCALAR)
  if (simd::kEnabled && !simd::scalar_forced()) {
    const simd::VDouble vnow = simd::broadcast(now);
    for (; k + simd::kDoubleLanes <= m; k += simd::kDoubleLanes) {
      simd::storeu(ttl_keys.data() + k,
                   simd::loadu(ttl_keys.data() + k) - vnow);
    }
  }
#endif
  for (; k < m; ++k) ttl_keys[k] -= now;
  ArenaVector<std::pair<double, PacketId>> keyed{
      ArenaAllocator<std::pair<double, PacketId>>(arena())};
  keyed.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    keyed.emplace_back(ttl_keys[j], to_check[j]);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 0; i < keyed.size(); ++i) to_check[i] = keyed[i].second;
  for (const PacketId pid : to_check) {
    if (max_count != 0 && uploaded.size() >= max_count) break;
    Packet& p = net.packet(pid);
    bool upload = force_all;
    if (!upload && p.next_hop == l) upload = true;  // reached intended hop
    if (!upload && !only_reached_hop) {
      // Prediction-inaccuracy rule (§IV-D.1): hand over only when this
      // (unexpected) landmark still reduces the expected delay.
      const double here_delay = landmarks_[l].table->delay_to(p.dst);
      if (here_delay < p.expected_delay) upload = true;
    }
    if (!upload) continue;
    net.node_to_station(n, pid);
    if (net.packet(pid).state == net::PacketState::kAtStation) {
      uploaded.push_back(pid);
      note_station_ingress(net, l, pid);
      check_loop(net, l, pid);
    }
  }
  return uploaded;
}

void DtnFlowRouter::update_channel_mode(const Network& net, LandmarkId l) {
  LandmarkState& ls = landmarks_[l];
  const double station =
      static_cast<double>(net.station_packets(l).size());
  double on_nodes = 0.0;
  for (const NodeId n : net.nodes_at(l)) {
    on_nodes += static_cast<double>(net.node_packets(n).size());
  }
  // gamma = station backlog / packets on connected nodes; empty-handed
  // visitors push gamma to infinity (nothing to upload -> forward).
  const double ratio = on_nodes > 0.0
                           ? station / on_nodes
                           : (station > 0.0 ? kInfiniteDelay : 0.0);
  if (ratio < cfg_.upload_threshold) {
    ls.uploading_mode = true;
  } else if (ratio > cfg_.download_threshold) {
    ls.uploading_mode = false;
  }
  // Between the thresholds the previous mode persists (hysteresis).
}

bool DtnFlowRouter::landmark_uploading_mode(LandmarkId l) const {
  DTN_ASSERT(l < landmarks_.size());
  return landmarks_[l].uploading_mode;
}

void DtnFlowRouter::on_arrival(Network& net, NodeId node, LandmarkId l) {
  arena().reset();  // top-level hook entry (util/arena.hpp lifetime rule)
  NodeState& ns = nodes_[node];
  const LandmarkId prev = net.previous_landmark(node);
  // The present set (and the newcomer's prediction state, below) is
  // changing: invalidate l's carrier-score cache.
  ++landmarks_[l].present_epoch;

  // A crashed node associates with nothing: its radio is dead.  The
  // stay clock still starts (the body is physically here).
  if (net.node_down(node)) {
    ns.arrived_at = net.now();
    return;
  }
  // Station outage: the whole association protocol (measurement,
  // vector exchange, uploads, offers) runs through the station, so the
  // visit is a no-op.  The node keeps any carried distance vector — it
  // will deliver it wherever it next finds a live station, which is
  // exactly the delayed propagation an outage causes.
  if (station_down_[l] != 0) {
    ns.arrived_at = net.now();
    return;
  }

  if (prev != kNoLandmark && prev != l) {
    // Transit observed: bandwidth measurement (arrival side).
    bw_.record_transit(prev, l);
    // shard-check: ok(distributed_bandwidth forces shard_safe()==false)
    if (dbw_.has_value()) dbw_->record_arrival(prev, l);
    ++diag().transits_observed;
    // Score the prediction made when the node sat at `prev`.
    if (ns.predicted_from == prev && ns.predicted_next != kNoLandmark) {
      ++diag().predictions_scored;
      double& acc = accuracy_.at(node, prev);
      if (ns.predicted_next == l) {
        ++diag().predictions_correct;
        acc = std::min(1.0, acc * cfg_.accuracy_gain);
      } else {
        acc = std::max(0.05, acc * cfg_.accuracy_loss);
      }
    }
  }

  // Deliver the distance vector carried from the previous landmark.
  if (ns.carried_dv.has_value() && ns.carried_dv->origin != l) {
    sim::FaultInjector* faults = net.faults();
    if (faults != nullptr && faults->draw_dv_delay()) {
      // Injected control-plane delay: the exchange at this association
      // fails, the node keeps carrying the vector to a later landmark.
      ++diag().dv_deliveries_deferred;
    } else {
      net.account_control(static_cast<double>(ns.carried_dv->entries()));
      const bool merged =
          landmarks_[l].table->merge(*ns.carried_dv, net.now());
      if (merged && needs_reconvergence_[l] != 0) {
        needs_reconvergence_[l] = 0;
        ++diag().post_outage_reconvergences;
      }
      ns.carried_dv.reset();
    }
  } else {
    ns.carried_dv.reset();
  }

  // Deliver the §IV-C.1 reverse-notification token, if we are the
  // landmark it was addressed to (mispredicted carriers discard it).
  if (ns.carried_token.has_value()) {
    if (dbw_.has_value()) {
      net.account_control(1.0);
      // shard-check: ok(distributed_bandwidth forces shard_safe()==false)
      (void)dbw_->deliver_token(l, *ns.carried_token);
    }
    ns.carried_token.reset();
  }

  ns.arrived_at = net.now();
  ns.predictor->record_visit(l);
  ns.predicted_next = ns.predictor->predict();
  ns.predicted_from = l;

  // Step 5 uploads, then re-dispatch what landed at the station; with
  // §IV-D.5 scheduling the serialized channel serves either the uplink
  // (uploading mode: node uploads up to B_up most-urgent packets, no
  // downloads this association) or the downlink (forwarding mode: only
  // reached-next-hop uploads, then the station forwards).
  if (cfg_.scheduled_communication) {
    update_channel_mode(net, l);
    const bool uploading = landmarks_[l].uploading_mode;
    const auto uploaded = upload_packets(
        net, node, l, /*force_all=*/false,
        uploading ? cfg_.max_uploads_per_arrival : 0,
        /*only_reached_hop=*/!uploading);
    for (const PacketId pid : uploaded) {
      if (net.packet(pid).state == net::PacketState::kAtStation) {
        dispatch_packet(net, l, pid);
      }
    }
    if (!uploading) {
      offer_packets_to_node(net, l, node);
    }
  } else {
    const auto uploaded = upload_packets(net, node, l, /*force_all=*/false);
    for (const PacketId pid : uploaded) {
      if (net.packet(pid).state == net::PacketState::kAtStation) {
        dispatch_packet(net, l, pid);
      }
    }
    // The landmark offers stored packets to the newcomer.
    offer_packets_to_node(net, l, node);
  }

  // Dead-end extension: arrivals give parked co-located nodes a chance
  // to be checked (a stuck node's stay keeps growing between events).
  if (cfg_.dead_end_prevention) {
    for (const NodeId other : net.nodes_at(l)) {
      if (other != node) check_parked_dead_end(net, other);
    }
  }
}

void DtnFlowRouter::on_departure_batch_begin(Network& net, LandmarkId l,
                                             std::size_t count) {
  (void)net;
  // Advance the epoch for the whole batch at once — by exactly `count`,
  // so serialized epoch values match unbatched replay bit-for-bit —
  // and bank the balance for the per-node hooks to consume.  Nothing
  // in on_departure consults the carrier cache, so no entry is ever
  // built against the prepaid epoch while the present set still
  // shrinks (contract in net/router.hpp).
  landmarks_[l].present_epoch += count;
  epoch_prepaid_[sim::current_shard()] += count;
}

void DtnFlowRouter::on_departure(Network& net, NodeId node, LandmarkId l) {
  NodeState& ns = nodes_[node];
  // The departing node leaves the present set once this hook returns.
  // Inside a batch the epoch advance was prepaid by
  // on_departure_batch_begin; consume the balance instead of bumping.
  if (std::uint64_t& prepaid = epoch_prepaid_[sim::current_shard()];
      prepaid > 0) {
    --prepaid;
  } else {
    ++landmarks_[l].present_epoch;
  }
  // A crashed node departs carrying nothing new (its crash already
  // dropped the control state it held).
  if (net.node_down(node)) return;
  if (station_down_[l] != 0) {
    // No station to snapshot from; any vector still carried (deferred
    // delivery) rides along.  The stay completed normally.
    const double outage_stay = net.now() - ns.arrived_at;
    if (outage_stay > 0.0) {
      ns.stay_sum[l] += outage_stay;
      ns.stay_count[l] += 1;
      ns.total_stay += outage_stay;
      ns.total_stays += 1;
    }
    return;
  }
  // Snapshot the table for carriage (accounted once per leg), thinned
  // to every k-th departure *from this landmark* when the §IV-C.3
  // maintenance saving is on.
  ++ns.departures_since_dv[l];
  if (ns.departures_since_dv[l] >= cfg_.dv_exchange_every) {
    ns.departures_since_dv[l] = 0;
    ns.carried_dv = landmarks_[l].table->snapshot();
    net.account_control(static_cast<double>(ns.carried_dv->entries()));
    // Injected control-plane loss: the carrier picked the vector up but
    // it never survives the leg (models a corrupted/dropped exchange).
    sim::FaultInjector* faults = net.faults();
    if (faults != nullptr && faults->draw_dv_loss()) {
      ns.carried_dv.reset();
      ++diag().dv_carriers_lost;
    }
  } else {
    ns.carried_dv.reset();
  }

  // Hand the departing node the bandwidth report for the link it is
  // predicted to close (§IV-C.1).
  if (dbw_.has_value() && ns.predicted_from == l &&
      ns.predicted_next != kNoLandmark) {
    // shard-check: ok(distributed_bandwidth forces shard_safe()==false)
    ns.carried_token = dbw_->issue_token(l, ns.predicted_next);
  }

  // Stay-time statistics (completed stay).
  const double stay = net.now() - ns.arrived_at;
  if (stay > 0.0) {
    ns.stay_sum[l] += stay;
    ns.stay_count[l] += 1;
    ns.total_stay += stay;
    ns.total_stays += 1;
  }
}

void DtnFlowRouter::on_node_crash(Network& net, NodeId node) {
  NodeState& ns = nodes_[node];
  // Control state in transit dies with the carrier.
  if (ns.carried_dv.has_value()) {
    ns.carried_dv.reset();
    ++diag().dv_carriers_lost;
  }
  ns.carried_token.reset();
  // A present node's carrier score just collapsed to zero.
  const LandmarkId here = net.location(node);
  if (here != kNoLandmark) ++landmarks_[here].present_epoch;
}

void DtnFlowRouter::on_node_reboot(Network& net, NodeId node) {
  const LandmarkId here = net.location(node);
  if (here != kNoLandmark) ++landmarks_[here].present_epoch;
}

void DtnFlowRouter::on_station_outage(Network& net, LandmarkId l) {
  (void)net;
  station_down_[l] = 1;
  ++diag().station_outages_seen;
}

void DtnFlowRouter::on_station_recovery(Network& net, LandmarkId l) {
  (void)net;
  station_down_[l] = 0;
  needs_reconvergence_[l] = 1;
  ++diag().station_recoveries_seen;
}

bool DtnFlowRouter::stay_is_dead_end(const NodeState& ns, LandmarkId l,
                                     double stay) const {
  if (ns.total_stays < cfg_.dead_end_min_records) return false;
  const double avg_all =
      ns.total_stay / static_cast<double>(ns.total_stays);
  if (stay > cfg_.dead_end_theta * avg_all) return true;
  if (ns.stay_count[l] > 0) {
    const double avg_here =
        ns.stay_sum[l] / static_cast<double>(ns.stay_count[l]);
    if (stay > cfg_.dead_end_theta * avg_here) return true;
  }
  return false;
}

void DtnFlowRouter::check_parked_dead_end(Network& net, NodeId n) {
  if (net.node_packets(n).empty()) return;
  const LandmarkId here = net.location(n);
  if (here == kNoLandmark) return;
  // A crashed node can't hand anything over, and a down station can't
  // receive the §IV-E.1 force-upload; re-checked after recovery.
  if (net.node_down(n) || station_down_[here] != 0) return;
  NodeState& ns = nodes_[n];
  const double stay = net.now() - ns.arrived_at;
  if (!stay_is_dead_end(ns, here, stay)) return;
  ++diag().dead_ends_detected;
  // Hand everything to the station; the landmark re-routes (§IV-E.1).
  const auto uploaded = upload_packets(net, n, here, /*force_all=*/true);
  for (const PacketId pid : uploaded) {
    if (net.packet(pid).state == net::PacketState::kAtStation) {
      dispatch_packet(net, here, pid);
    }
  }
}

void DtnFlowRouter::check_loop(Network& net, LandmarkId l, PacketId pid) {
  Packet& p = net.packet(pid);
  const auto& path = p.station_path;
  DTN_ASSERT(!path.empty() && path.back() == l);
  // Find a previous occurrence of l (excluding the entry just pushed).
  std::ptrdiff_t prev_idx = -1;
  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(path.size()) - 2; i >= 0;
       --i) {
    if (path[static_cast<std::size_t>(i)] == l) {
      prev_idx = i;
      break;
    }
  }
  if (prev_idx < 0) return;
  ++diag().loops_detected;
  if (!cfg_.loop_correction) return;
  const std::vector<LandmarkId> cycle(
      path.begin() + prev_idx, path.end() - 1);  // the looped landmarks
  correct_loop(net, p.dst, cycle);
}

void DtnFlowRouter::correct_loop(Network& net, LandmarkId dst,
                                 std::span<const LandmarkId> cycle) {
  ++diag().loops_corrected;
  // The loop-correction packet clears the poisoned state and makes the
  // involved landmarks exchange their updated distance vectors
  // repeatedly until the next hop for `dst` settles (§IV-E.2's T_stable
  // is modelled as bounded synchronous rounds; each round is a real
  // table transfer and is accounted as control traffic).
  // Landmarks in an injected outage sit the exchange out (their frozen
  // tables keep any poisoned entry until a later detection after
  // recovery) — the correction degrades gracefully instead of writing
  // into dead stations.
  for (const LandmarkId lm : cycle) {
    if (station_down_[lm] != 0) continue;
    landmarks_[lm].table->unpin(dst);
  }
  for (std::size_t round = 0; round < cfg_.loop_correction_rounds; ++round) {
    bool changed = false;
    for (const LandmarkId from : cycle) {
      if (station_down_[from] != 0) continue;
      const DistanceVector dv = landmarks_[from].table->snapshot();
      for (const LandmarkId to : cycle) {
        if (to == from || station_down_[to] != 0) continue;
        net.account_control(static_cast<double>(dv.entries()));
        const auto before = landmarks_[to].table->route(dst).next;
        landmarks_[to].table->merge(dv, net.now());
        if (landmarks_[to].table->route(dst).next != before) changed = true;
      }
    }
    if (!changed) break;
  }
}

void DtnFlowRouter::inject_loop(LandmarkId dst,
                                std::span<const LandmarkId> cycle) {
  DTN_ASSERT(cycle.size() >= 2);
  // Attractive fake delays make the pinned cycle the preferred route for
  // `dst` at each involved landmark.
  const double fake_delay = trace::kHour;
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const LandmarkId from = cycle[i];
    const LandmarkId to = cycle[(i + 1) % cycle.size()];
    landmarks_[from].table->pin(dst, to, fake_delay);
  }
}

void DtnFlowRouter::on_contact(Network& net, NodeId arriving, NodeId present,
                               LandmarkId l) {
  (void)l;
  if (!cfg_.node_to_node_relay) return;
  arena().reset();  // top-level hook entry (util/arena.hpp lifetime rule)
  // Suitability vectors travel both ways (accounted like the baselines').
  net.account_control(2.0 * static_cast<double>(net.num_landmarks()));
  relay_between_nodes(net, arriving, present);
  relay_between_nodes(net, present, arriving);
}

void DtnFlowRouter::relay_between_nodes(Network& net, NodeId from,
                                        NodeId to) {
  const auto carried = net.node_packets(from);
  const ArenaVector<PacketId> pids(carried.begin(), carried.end(),
                                   ArenaAllocator<PacketId>(arena()));
  for (const PacketId pid : pids) {
    const Packet& p = net.packet(pid);
    if (!net.node_buffer(to).has_space(p.size_kb)) continue;
    // A peer predicted to transit straight to the destination is always
    // an upgrade (§IV-D.2 applied between carriers)...
    const bool direct_upgrade =
        cfg_.direct_delivery && nodes_[to].predicted_next == p.dst &&
        nodes_[from].predicted_next != p.dst;
    // ...otherwise require a strictly better overall transit
    // probability toward the packet's chosen next hop.
    bool better = direct_upgrade;
    if (!better && p.next_hop != kNoLandmark) {
      better = overall_transit_probability(net, to, p.next_hop) >
               overall_transit_probability(net, from, p.next_hop);
    }
    if (better) {
      (void)net.node_to_node(from, to, pid);
    }
  }
}

void DtnFlowRouter::on_time_unit(Network& net, std::size_t unit_index) {
  arena().reset();  // top-level hook entry (util/arena.hpp lifetime rule)
  for (const auto& inj : cfg_.loop_injections) {
    if (inj.at_unit == unit_index) inject_loop(inj.dst, inj.cycle);
  }
  bw_.close_unit();
  if (dbw_.has_value()) dbw_->close_unit();
  const std::size_t m = landmarks_.size();
  for (LandmarkId l = 0; l < m; ++l) {
    LandmarkState& ls = landmarks_[l];
    // A station in an outage is frozen whole: no link refresh, no
    // monitor roll, no expiry sweep — it resumes with its durable
    // pre-outage state (and stale routes age out naturally afterwards).
    if (station_down_[l] != 0) continue;
    for (LandmarkId j = 0; j < m; ++j) {
      if (j == l) continue;
      ls.table->set_link_delay(j, link_expected_delay(l, j));
    }
    // Roll the load-balancing monitors.
    ls.prev_incoming.swap(ls.incoming);
    ls.prev_outgoing.swap(ls.outgoing);
    std::fill(ls.incoming.begin(), ls.incoming.end(), 0.0);
    std::fill(ls.outgoing.begin(), ls.outgoing.end(), 0.0);
    // Graceful degradation: withdraw routes advertised by landmarks
    // that have stayed silent too long (e.g. through a dead station).
    if (cfg_.route_staleness_units > 0.0) {
      const double cutoff =
          net.now() - cfg_.route_staleness_units * time_unit_;
      diag().stale_origins_expired += ls.table->expire_stale(cutoff);
    }
  }
  if (cfg_.dead_end_prevention) {
    for (NodeId n = 0; n < nodes_.size(); ++n) {
      if (net.location(n) != kNoLandmark) check_parked_dead_end(net, n);
    }
  }
}

std::vector<LandmarkId> DtnFlowRouter::frequent_landmarks(const Network& net,
                                                          NodeId node,
                                                          std::size_t count) {
  std::vector<std::uint32_t> visits(net.num_landmarks(), 0);
  for (const auto& v : net.history(node)) ++visits[v.landmark];
  std::vector<LandmarkId> order(net.num_landmarks());
  for (LandmarkId l = 0; l < order.size(); ++l) order[l] = l;
  std::stable_sort(order.begin(), order.end(), [&](LandmarkId a, LandmarkId b) {
    return visits[a] > visits[b];
  });
  std::vector<LandmarkId> top;
  for (const LandmarkId l : order) {
    if (visits[l] == 0 || top.size() == count) break;
    top.push_back(l);
  }
  return top;
}

// -- checkpointing ------------------------------------------------------

void DtnFlowRouter::checkpoint_save(persist::Writer& w) const {
  w.u64(nodes_.size());
  w.u64(landmarks_.size());
  w.f64(time_unit_);
  bw_.save(w);
  w.boolean(dbw_.has_value());
  if (dbw_.has_value()) dbw_->save(w);
  for (const NodeState& ns : nodes_) {
    ns.predictor->save(w);
    w.u32(ns.predicted_next);
    w.u32(ns.predicted_from);
    w.f64(ns.arrived_at);
    w.boolean(ns.carried_dv.has_value());
    if (ns.carried_dv.has_value()) {
      w.u32(ns.carried_dv->origin);
      w.u64(ns.carried_dv->seq);
      persist::write_vec(w, ns.carried_dv->delay);
    }
    w.boolean(ns.carried_token.has_value());
    if (ns.carried_token.has_value()) {
      w.u32(ns.carried_token->link_from);
      w.u32(ns.carried_token->link_to);
      w.f64(ns.carried_token->count);
      w.u64(ns.carried_token->unit);
    }
    persist::write_vec(w, ns.departures_since_dv);
    persist::write_vec(w, ns.stay_sum);
    persist::write_vec(w, ns.stay_count);
    w.f64(ns.total_stay);
    w.u32(ns.total_stays);
  }
  for (const LandmarkState& ls : landmarks_) {
    ls.table->save(w);
    persist::write_vec(w, ls.incoming);
    persist::write_vec(w, ls.outgoing);
    persist::write_vec(w, ls.prev_incoming);
    persist::write_vec(w, ls.prev_outgoing);
    persist::write_vec(w, ls.divert_toggle);
    w.boolean(ls.uploading_mode);
    w.u64(ls.present_epoch);
  }
  persist::write_vec(w, station_down_);
  persist::write_vec(w, needs_reconvergence_);
  persist::write_matrix(w, accuracy_);
  const DtnFlowDiagnostics d = diagnostics();
  w.u64(d.transits_observed);
  w.u64(d.predictions_scored);
  w.u64(d.predictions_correct);
  w.u64(d.dead_ends_detected);
  w.u64(d.loops_detected);
  w.u64(d.loops_corrected);
  w.u64(d.balancing_diversions);
  w.u64(d.station_outages_seen);
  w.u64(d.station_recoveries_seen);
  w.u64(d.dv_carriers_lost);
  w.u64(d.dv_deliveries_deferred);
  w.u64(d.stale_origins_expired);
  w.u64(d.fallback_next_hops);
  w.u64(d.post_outage_reconvergences);
}

void DtnFlowRouter::checkpoint_load(persist::Reader& r, Network& net) {
  // Size every container from the configuration first, then overwrite.
  // The carrier caches and scratch buffers stay fresh: their entries are
  // born with epoch 0, stale against every serialized present_epoch
  // (>= 1), so they rebuild lazily with identical contents.
  on_init(net);
  if (r.u64() != nodes_.size() || r.u64() != landmarks_.size()) {
    throw persist::FormatError("checkpoint router section: topology mismatch");
  }
  time_unit_ = r.f64();
  bw_.load(r);
  if (r.boolean() != dbw_.has_value()) {
    throw persist::FormatError(
        "checkpoint router section: distributed-bandwidth config mismatch");
  }
  if (dbw_.has_value()) dbw_->load(r);
  for (NodeState& ns : nodes_) {
    ns.predictor->load(r);
    ns.predicted_next = r.u32();
    ns.predicted_from = r.u32();
    ns.arrived_at = r.f64();
    if (r.boolean()) {
      DistanceVector dv;
      dv.origin = r.u32();
      dv.seq = r.u64();
      persist::read_vec(r, dv.delay);
      if (dv.origin >= landmarks_.size() ||
          dv.delay.size() != landmarks_.size()) {
        throw persist::FormatError(
            "checkpoint router section: malformed carried distance vector");
      }
      ns.carried_dv = std::move(dv);
    } else {
      ns.carried_dv.reset();
    }
    if (r.boolean()) {
      BandwidthToken tok;
      tok.link_from = r.u32();
      tok.link_to = r.u32();
      tok.count = r.f64();
      tok.unit = r.u64();
      if (tok.link_from >= landmarks_.size() ||
          tok.link_to >= landmarks_.size()) {
        throw persist::FormatError(
            "checkpoint router section: malformed carried bandwidth token");
      }
      ns.carried_token = tok;
    } else {
      ns.carried_token.reset();
    }
    persist::read_vec(r, ns.departures_since_dv);
    persist::read_vec(r, ns.stay_sum);
    persist::read_vec(r, ns.stay_count);
    ns.total_stay = r.f64();
    ns.total_stays = r.u32();
    if (ns.departures_since_dv.size() != landmarks_.size() ||
        ns.stay_sum.size() != landmarks_.size() ||
        ns.stay_count.size() != landmarks_.size()) {
      throw persist::FormatError(
          "checkpoint router section: per-node vector size mismatch");
    }
  }
  for (LandmarkState& ls : landmarks_) {
    ls.table->load(r);
    persist::read_vec(r, ls.incoming);
    persist::read_vec(r, ls.outgoing);
    persist::read_vec(r, ls.prev_incoming);
    persist::read_vec(r, ls.prev_outgoing);
    persist::read_vec(r, ls.divert_toggle);
    ls.uploading_mode = r.boolean();
    ls.present_epoch = r.u64();
    if (ls.incoming.size() != landmarks_.size() ||
        ls.outgoing.size() != landmarks_.size() ||
        ls.prev_incoming.size() != landmarks_.size() ||
        ls.prev_outgoing.size() != landmarks_.size() ||
        ls.divert_toggle.size() != landmarks_.size() ||
        ls.present_epoch == 0) {
      throw persist::FormatError(
          "checkpoint router section: per-landmark state mismatch");
    }
  }
  persist::read_vec(r, station_down_);
  persist::read_vec(r, needs_reconvergence_);
  persist::read_matrix(r, accuracy_);
  if (station_down_.size() != landmarks_.size() ||
      needs_reconvergence_.size() != landmarks_.size() ||
      accuracy_.rows() != nodes_.size() ||
      accuracy_.cols() != landmarks_.size()) {
    throw persist::FormatError(
        "checkpoint router section: fault-mirror/accuracy shape mismatch");
  }
  DtnFlowDiagnostics d;
  d.transits_observed = r.u64();
  d.predictions_scored = r.u64();
  d.predictions_correct = r.u64();
  d.dead_ends_detected = r.u64();
  d.loops_detected = r.u64();
  d.loops_corrected = r.u64();
  d.balancing_diversions = r.u64();
  d.station_outages_seen = r.u64();
  d.station_recoveries_seen = r.u64();
  d.dv_carriers_lost = r.u64();
  d.dv_deliveries_deferred = r.u64();
  d.stale_origins_expired = r.u64();
  d.fallback_next_hops = r.u64();
  d.post_outage_reconvergences = r.u64();
  diag_slots_.assign(1, d);
  scratch_slots_.assign(1, {});
  ensure_arenas(1);  // restored runs start serial; prepare_shards regrows
}

}  // namespace dtn::core
